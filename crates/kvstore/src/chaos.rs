//! Seeded chaos scenarios: crash/revive, partition/heal, and loss-burst
//! schedules generated from a single seed, plus the property tests that
//! prove dedup soundness under them.
//!
//! A [`ChaosScenario`] is the bridge between the fault primitives —
//! [`FaultPlan`](ef_netsim::FaultPlan) on the network side,
//! [`SimCluster::crash_at`]/[`SimCluster::revive_at`] on the cluster
//! side — and repeatable experiments: everything is derived from the
//! scenario seed through [`DetRng`] substreams, so a run with the same
//! seed replays bit-identically.
//!
//! The invariants the property tests assert (see the module tests):
//!
//! * **Soundness (zero false duplicates):** an op that resolves
//!   `Dedup { unique: false }` did so because a replica returned the
//!   recorded value, which requires some earlier check-and-insert of the
//!   same key to have resolved unique. Degradation can only produce
//!   false *uniques* (harmless double uploads), never false duplicates.
//! * **Completion:** every submitted op resolves — completes, times out,
//!   or degrades — so no client hangs regardless of the fault mix.

use crate::msg::OpId;
use crate::sim::SimCluster;
use ef_netsim::{ByzantineFault, FaultPlan, FaultScope, Network, NodeId, SiteId, Topology};
use ef_simcore::{DetRng, SimDuration, SimTime};

/// Knobs for [`ChaosScenario::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosScenarioConfig {
    /// The window faults are scheduled within; ops submitted inside it
    /// experience the scenario.
    pub duration: SimDuration,
    /// Crash/revive pairs to schedule.
    pub crashes: usize,
    /// Site-pair partitions (with heal times) to schedule.
    pub partitions: usize,
    /// Bursty loss windows to schedule.
    pub loss_bursts: usize,
    /// Crash-stop/restart pairs to schedule: the victim loses all
    /// volatile state and recovers from its WAL on restart (unlike
    /// [`ChaosScenarioConfig::crashes`], which keep state and merely drop
    /// messages while down).
    pub crash_stops: usize,
    /// Permanent departures to schedule: the victim never comes back,
    /// its disk is destroyed, and the ring is rebuilt once peers declare
    /// it dead.
    pub departures: usize,
    /// Background loss probability applied to all links for the whole
    /// run (0 disables).
    pub base_loss: f64,
    /// Upper bound for each burst's loss probability.
    pub max_burst_loss: f64,
    /// Seeded at-rest bit-rot strikes to schedule: each flips a handful
    /// of bits in the victim's storage-engine values or durable WAL
    /// bytes (see [`SimCluster::storage_rot_at`]).
    pub storage_rots: usize,
    /// Per-message wire bit-rot probability applied to all links for the
    /// whole run (0 disables). Corrupted frames fail their checksum at
    /// the receiver and are rejected, never silently accepted.
    pub wire_rot: f64,
    /// Fail-slow (gray-failure) windows to schedule: each picks an edge
    /// node whose outbound service rate is divided by a drawn factor for
    /// the window — the node stays up and answers, just slowly.
    pub slow_nodes: usize,
    /// Fail-slow storage windows to schedule: each picks an edge node
    /// whose WAL fsyncs and snapshot writes stall by a drawn factor for
    /// the window, delaying its replies without dropping anything.
    pub storage_stalls: usize,
    /// Congested-link windows to schedule: each picks a distinct edge
    /// site pair whose effective bandwidth is divided by a drawn factor
    /// (skipped when the topology has fewer than two edge sites).
    pub congestions: usize,
    /// Upper bound for every fail-slow factor draw (service, stall, and
    /// bandwidth); factors land in `[1, max_slow_factor]`.
    pub max_slow_factor: f64,
    /// Cloud-outage windows to schedule: each blacks out every link
    /// touching a cloud site for a window drawn early in the run, so
    /// spooled uniques get to drain before any later ring disaster
    /// (skipped drawlessly when the topology has no cloud site).
    pub cloud_outages: usize,
    /// Ring-outage windows to schedule: each wipes every node in one
    /// edge site — volatile state, disks, and spools — for a window
    /// drawn late in the run, forcing mesh repair from neighbor rings
    /// on heal (skipped when fewer than two edge sites exist).
    pub ring_outages: usize,
    /// Degraded-uplink windows to schedule: each caps the effective
    /// bandwidth of every link touching a cloud site by a drawn factor
    /// (skipped drawlessly when the topology has no cloud site).
    pub uplink_degrades: usize,
    /// Byzantine liars to schedule: each picks a distinct edge node
    /// that, for a window spanning most of the run, answers lookups
    /// with false positive sightings, serves garbage bytes on repair
    /// and restore fetches, equivocates during Merkle anti-entropy,
    /// and floods bogus hints. The count is clamped to a strict
    /// minority of the membership so honest quorums survive.
    pub byzantine_liars: usize,
}

impl Default for ChaosScenarioConfig {
    /// A moderately hostile default: 10 s window, two crashes, one
    /// partition, two loss bursts (≤ 40%), 5% background loss, and no
    /// crash-stops or departures (opt in per scenario).
    fn default() -> Self {
        ChaosScenarioConfig {
            duration: SimDuration::from_secs_f64(10.0),
            crashes: 2,
            partitions: 1,
            loss_bursts: 2,
            crash_stops: 0,
            departures: 0,
            base_loss: 0.05,
            max_burst_loss: 0.4,
            storage_rots: 0,
            wire_rot: 0.0,
            slow_nodes: 0,
            storage_stalls: 0,
            congestions: 0,
            max_slow_factor: 4.0,
            cloud_outages: 0,
            ring_outages: 0,
            uplink_degrades: 0,
            byzantine_liars: 0,
        }
    }
}

/// One scheduled fault in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// Crash `node` at `at` (its messages are dropped until revival).
    Crash {
        /// When the crash happens.
        at: SimTime,
        /// The crashed node.
        node: NodeId,
    },
    /// Revive `node` at `at`.
    Revive {
        /// When the node comes back.
        at: SimTime,
        /// The revived node.
        node: NodeId,
    },
    /// Partition sites `a` and `b` from `from` until `heal`.
    Partition {
        /// One side of the partition.
        a: SiteId,
        /// The other side.
        b: SiteId,
        /// Partition start.
        from: SimTime,
        /// Heal time.
        heal: SimTime,
    },
    /// All links lose messages with `probability` in `[from, until)`.
    LossBurst {
        /// Burst start.
        from: SimTime,
        /// Burst end.
        until: SimTime,
        /// Per-message drop probability during the burst.
        probability: f64,
    },
    /// Crash-stop `node` at `at`: all volatile state (memtable, hints,
    /// in-flight ops) is lost; only the WAL survives for the restart.
    CrashStop {
        /// When the crash-stop happens.
        at: SimTime,
        /// The crash-stopped node.
        node: NodeId,
    },
    /// Restart `node` at `at`, recovering its shard from the WAL.
    Restart {
        /// When the node restarts.
        at: SimTime,
        /// The restarting node.
        node: NodeId,
    },
    /// Permanently remove `node` at `at`: a crash-stop whose disk is
    /// destroyed and that never restarts.
    Depart {
        /// When the node departs.
        at: SimTime,
        /// The departing node.
        node: NodeId,
    },
    /// At-rest bit rot strikes `node` at `at`: a handful of seeded bit
    /// flips across its stored values and WAL bytes (a crash-stopped
    /// victim's parked disk rots instead).
    StorageRot {
        /// When the rot strikes.
        at: SimTime,
        /// The struck node.
        node: NodeId,
        /// Seed for the flip positions.
        rot_seed: u64,
    },
    /// `node` fails slow in `[from, until)`: its outbound service rate
    /// is divided by `service_factor` while it keeps answering — the
    /// gray failure that liveness detectors built on silence never see.
    SlowNode {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// The gray node.
        node: NodeId,
        /// Service-time multiplier (≥ 1).
        service_factor: f64,
    },
    /// `node`'s storage stalls in `[from, until)`: WAL fsyncs and
    /// snapshot writes take `stall_factor` times longer, delaying its
    /// replies without losing durability.
    StorageStall {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// The stalled node.
        node: NodeId,
        /// Storage-latency multiplier (≥ 1).
        stall_factor: f64,
    },
    /// The `a`↔`b` links are congested in `[from, until)`: effective
    /// bandwidth is divided by `bandwidth_factor` in both directions.
    Congestion {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// One congested site.
        a: SiteId,
        /// The other site.
        b: SiteId,
        /// Bandwidth divisor (≥ 1).
        bandwidth_factor: f64,
    },
    /// Every link touching cloud site `site` is blacked out in
    /// `[from, until)`: the uplink is cut, frames to or from the cloud
    /// drop unconditionally, and spooled uniques accumulate locally.
    CloudOutage {
        /// Outage start.
        from: SimTime,
        /// Heal time.
        until: SimTime,
        /// The unreachable cloud site.
        site: SiteId,
    },
    /// Every node in edge site `site` is wiped in `[from, until)`:
    /// volatile state, disks, and upload spools are all destroyed, and
    /// on heal the ring rebuilds from neighbor rings (mesh repair) with
    /// the cloud catalog as last resort.
    RingOutage {
        /// Disaster start.
        from: SimTime,
        /// Heal (rebuild) time.
        until: SimTime,
        /// The wiped edge site.
        site: SiteId,
    },
    /// Every link touching cloud site `site` is bandwidth-capped in
    /// `[from, until)`: uploads still flow, `bandwidth_factor` times
    /// slower.
    UplinkDegraded {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// The degraded cloud site.
        site: SiteId,
        /// Bandwidth divisor (≥ 1).
        bandwidth_factor: f64,
    },
    /// `node` turns Byzantine in `[from, until)`: it lies on lookups,
    /// serves garbage on repair fetches, equivocates during
    /// anti-entropy, and floods bogus hints — all four behaviors of
    /// [`ef_netsim::ByzantineFault`] at once, the strongest adversary
    /// the proof-of-possession and trust-ledger defenses must defeat.
    ByzantineLiar {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// The lying node.
        node: NodeId,
    },
}

/// A seeded schedule of crashes, partitions, and loss bursts.
///
/// Generate with [`ChaosScenario::generate`], attach the network half
/// with [`ChaosScenario::rig`] (before building the [`SimCluster`], so
/// the cluster auto-arms its retry policy), and the cluster half with
/// [`ChaosScenario::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    seed: u64,
    config: ChaosScenarioConfig,
    events: Vec<ChaosEvent>,
}

impl ChaosScenario {
    /// Derives a fault schedule for `topology` from `seed`.
    ///
    /// Crashes pick edge nodes, partitions pick distinct edge-site
    /// pairs (skipped when the topology has fewer than two edge sites),
    /// and every choice comes from a seed-derived [`DetRng`] substream:
    /// the same `(seed, topology, config)` always yields the same
    /// scenario.
    pub fn generate(seed: u64, topology: &Topology, config: &ChaosScenarioConfig) -> Self {
        let mut rng = DetRng::new(seed).substream("chaos-scenario");
        let edge = topology.edge_nodes();
        let sites = topology.edge_sites();
        let dur = config.duration;
        let mut events = Vec::new();
        let pick = |rng: &mut DetRng, n: usize| ((rng.unit() * n as f64) as usize).min(n - 1);

        for _ in 0..config.crashes {
            let node = edge[pick(&mut rng, edge.len())];
            // Crash in the first 60% of the window; stay down 5–30% of
            // it, so revival (and hint replay) happens on-screen.
            let at = SimTime::ZERO + dur * (rng.unit() * 0.6);
            let down_for = dur * (0.05 + rng.unit() * 0.25);
            events.push(ChaosEvent::Crash { at, node });
            events.push(ChaosEvent::Revive {
                at: at + down_for,
                node,
            });
        }

        if sites.len() >= 2 {
            for _ in 0..config.partitions {
                let i = pick(&mut rng, sites.len());
                let mut j = pick(&mut rng, sites.len() - 1);
                if j >= i {
                    j += 1;
                }
                let from = SimTime::ZERO + dur * (rng.unit() * 0.6);
                let heal = from + dur * (0.05 + rng.unit() * 0.25);
                events.push(ChaosEvent::Partition {
                    a: sites[i],
                    b: sites[j],
                    from,
                    heal,
                });
            }
        }

        for _ in 0..config.loss_bursts {
            let from = SimTime::ZERO + dur * (rng.unit() * 0.7);
            let until = from + dur * (0.05 + rng.unit() * 0.2);
            let probability = config.max_burst_loss * rng.unit();
            events.push(ChaosEvent::LossBurst {
                from,
                until,
                probability,
            });
        }

        // Crash-stop and departure victims are drawn from a shrinking
        // pool of distinct nodes, so a scheduled restart never races a
        // permanent departure of the same node and at least two members
        // always survive the scenario.
        let mut pool = edge.clone();
        let crash_stops = config.crash_stops.min(pool.len().saturating_sub(1));
        for _ in 0..crash_stops {
            let node = pool.remove(pick(&mut rng, pool.len()));
            // Crash-stop in the first half; stay down 10–40% of the
            // window so WAL recovery and anti-entropy catch-up happen
            // while the workload is still running.
            let at = SimTime::ZERO + dur * (rng.unit() * 0.5);
            let down_for = dur * (0.1 + rng.unit() * 0.3);
            events.push(ChaosEvent::CrashStop { at, node });
            events.push(ChaosEvent::Restart {
                at: at + down_for,
                node,
            });
        }
        let departures = if pool.len() >= 3 {
            config.departures.min(pool.len() - 2)
        } else {
            0
        };
        for _ in 0..departures {
            let node = pool.remove(pick(&mut rng, pool.len()));
            // Depart in the 20–60% band: late enough to own data, early
            // enough for dead-declaration and re-replication on-screen.
            let at = SimTime::ZERO + dur * (0.2 + rng.unit() * 0.4);
            events.push(ChaosEvent::Depart { at, node });
        }

        // Storage-rot draws come last, so scenarios without rot keep
        // their RNG trace — and therefore their whole schedule —
        // bit-identical to pre-rot builds. Victims may overlap other
        // faults: rotting a crash-stopped node's parked disk is exactly
        // the interesting case.
        for _ in 0..config.storage_rots {
            let node = edge[pick(&mut rng, edge.len())];
            // Strike in the 10–70% band: late enough that the victim
            // holds data, early enough for scrub detection and repair
            // on-screen.
            let at = SimTime::ZERO + dur * (0.1 + rng.unit() * 0.6);
            let rot_seed = rng.next_u64();
            events.push(ChaosEvent::StorageRot { at, node, rot_seed });
        }

        // Gray-failure draws come after every pre-existing draw (the
        // same append-only discipline as storage rot above), so turning
        // the fail-slow knobs on extends a scenario without reshuffling
        // the crash/partition/loss/rot schedule.
        let factor_span = (config.max_slow_factor - 1.0).max(0.0);
        for _ in 0..config.slow_nodes {
            let node = edge[pick(&mut rng, edge.len())];
            // Slow down in the first half and stay gray 20–60% of the
            // window: long enough for RTT estimators to adapt and for
            // hedges to fire while the workload is still running.
            let from = SimTime::ZERO + dur * (rng.unit() * 0.5);
            let until = from + dur * (0.2 + rng.unit() * 0.4);
            let service_factor = 1.0 + rng.unit() * factor_span;
            events.push(ChaosEvent::SlowNode {
                from,
                until,
                node,
                service_factor,
            });
        }
        for _ in 0..config.storage_stalls {
            let node = edge[pick(&mut rng, edge.len())];
            let from = SimTime::ZERO + dur * (rng.unit() * 0.5);
            let until = from + dur * (0.1 + rng.unit() * 0.3);
            let stall_factor = 1.0 + rng.unit() * factor_span;
            events.push(ChaosEvent::StorageStall {
                from,
                until,
                node,
                stall_factor,
            });
        }
        if sites.len() >= 2 {
            for _ in 0..config.congestions {
                let i = pick(&mut rng, sites.len());
                let mut j = pick(&mut rng, sites.len() - 1);
                if j >= i {
                    j += 1;
                }
                let from = SimTime::ZERO + dur * (rng.unit() * 0.6);
                let until = from + dur * (0.1 + rng.unit() * 0.3);
                let bandwidth_factor = 1.0 + rng.unit() * factor_span;
                events.push(ChaosEvent::Congestion {
                    from,
                    until,
                    a: sites[i],
                    b: sites[j],
                    bandwidth_factor,
                });
            }
        }

        // Disaster draws come last (append-only discipline again), so
        // turning the disaster knobs on never reshuffles the existing
        // schedule. Window bands are deliberate: cloud outages end by
        // the 50% mark and ring outages start after the 55% mark, so a
        // spool always gets a drain window before a ring wipe can
        // destroy the only surviving copy of an undrained unique.
        let clouds = topology.cloud_sites();
        if !clouds.is_empty() {
            for _ in 0..config.cloud_outages {
                let site = clouds[pick(&mut rng, clouds.len())];
                let from = SimTime::ZERO + dur * (rng.unit() * 0.35);
                let until = from + dur * (0.05 + rng.unit() * 0.10);
                events.push(ChaosEvent::CloudOutage { from, until, site });
            }
        }
        if sites.len() >= 2 {
            for _ in 0..config.ring_outages {
                let site = sites[pick(&mut rng, sites.len())];
                let from = SimTime::ZERO + dur * (0.55 + rng.unit() * 0.20);
                let until = from + dur * (0.05 + rng.unit() * 0.10);
                events.push(ChaosEvent::RingOutage { from, until, site });
            }
        }
        if !clouds.is_empty() {
            for _ in 0..config.uplink_degrades {
                let site = clouds[pick(&mut rng, clouds.len())];
                let from = SimTime::ZERO + dur * (rng.unit() * 0.6);
                let until = from + dur * (0.1 + rng.unit() * 0.3);
                let bandwidth_factor = 1.0 + rng.unit() * factor_span;
                events.push(ChaosEvent::UplinkDegraded {
                    from,
                    until,
                    site,
                    bandwidth_factor,
                });
            }
        }

        // Byzantine draws come last (append-only discipline again), so
        // arming liars never reshuffles the existing schedule. Liars
        // are drawn from a shrinking pool of distinct nodes and clamped
        // to a strict minority of the membership, so honest replicas
        // always outnumber lying ones and a quorum of truth survives.
        // Windows open early and close near the horizon: long enough
        // for the trust ledger to accumulate strikes and quarantine the
        // liar on-screen.
        let mut liar_pool = edge.clone();
        let tolerated = edge.len().saturating_sub(1) / 2;
        let liars = config.byzantine_liars.min(tolerated);
        for _ in 0..liars {
            let node = liar_pool.remove(pick(&mut rng, liar_pool.len()));
            let from = SimTime::ZERO + dur * (rng.unit() * 0.15);
            let until = SimTime::ZERO + dur * (0.85 + rng.unit() * 0.10);
            events.push(ChaosEvent::ByzantineLiar { from, until, node });
        }

        ChaosScenario {
            seed,
            config: *config,
            events,
        }
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation knobs.
    pub fn config(&self) -> &ChaosScenarioConfig {
        &self.config
    }

    /// The scheduled faults, in generation order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Builds the network half of the scenario: background loss and wire
    /// bit rot plus every partition and loss burst, seeded with the
    /// scenario seed.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        if self.config.base_loss > 0.0 {
            plan = plan.loss(FaultScope::All, self.config.base_loss);
        }
        if self.config.wire_rot > 0.0 {
            plan = plan.bitrot(FaultScope::All, self.config.wire_rot);
        }
        for ev in &self.events {
            match *ev {
                ChaosEvent::Partition { a, b, from, heal } => {
                    plan = plan.partition(a, b, from, heal);
                }
                ChaosEvent::LossBurst {
                    from,
                    until,
                    probability,
                } => {
                    plan = plan.loss_window(FaultScope::All, probability, from, until);
                }
                ChaosEvent::SlowNode {
                    from,
                    until,
                    node,
                    service_factor,
                } => {
                    plan = plan.slow_node(node, service_factor, from, until);
                }
                ChaosEvent::Congestion {
                    from,
                    until,
                    a,
                    b,
                    bandwidth_factor,
                } => {
                    plan = plan.throttle(FaultScope::SitePair(a, b), bandwidth_factor, from, until);
                }
                ChaosEvent::CloudOutage { from, until, site } => {
                    plan = plan.blackout(FaultScope::Site(site), from, until);
                }
                ChaosEvent::UplinkDegraded {
                    from,
                    until,
                    site,
                    bandwidth_factor,
                } => {
                    plan = plan.throttle(FaultScope::Site(site), bandwidth_factor, from, until);
                }
                ChaosEvent::ByzantineLiar { from, until, node } => {
                    // A liar exhibits all four behaviors for its whole
                    // window — the composed worst case.
                    for fault in [
                        ByzantineFault::LieOnLookup,
                        ByzantineFault::ServeGarbage,
                        ByzantineFault::EquivocateSummary,
                        ByzantineFault::HintFlood,
                    ] {
                        plan = plan.byzantine(node, fault, from, until);
                    }
                }
                ChaosEvent::Crash { .. }
                | ChaosEvent::Revive { .. }
                | ChaosEvent::CrashStop { .. }
                | ChaosEvent::Restart { .. }
                | ChaosEvent::Depart { .. }
                | ChaosEvent::StorageRot { .. }
                | ChaosEvent::StorageStall { .. }
                | ChaosEvent::RingOutage { .. } => {}
            }
        }
        plan
    }

    /// Attaches [`ChaosScenario::fault_plan`] to `network`. Call before
    /// constructing the [`SimCluster`] so it auto-arms a retry policy.
    pub fn rig(&self, network: &mut Network) {
        network.set_fault_plan(self.fault_plan());
    }

    /// Schedules the node-fault half of the scenario on `cluster`:
    /// crashes/revivals, crash-stops/restarts, and departures.
    pub fn apply(&self, cluster: &mut SimCluster) {
        for ev in &self.events {
            match *ev {
                ChaosEvent::Crash { at, node } => cluster.crash_at(at, node),
                ChaosEvent::Revive { at, node } => cluster.revive_at(at, node),
                ChaosEvent::CrashStop { at, node } => cluster.crash_stop_at(at, node),
                ChaosEvent::Restart { at, node } => cluster.restart_at(at, node),
                ChaosEvent::Depart { at, node } => cluster.depart_at(at, node),
                ChaosEvent::StorageRot { at, node, rot_seed } => {
                    cluster.storage_rot_at(at, node, rot_seed);
                }
                ChaosEvent::StorageStall {
                    from,
                    until,
                    node,
                    stall_factor,
                } => {
                    cluster.storage_stall_at(from, until, node, stall_factor);
                }
                ChaosEvent::CloudOutage { from, until, .. } => {
                    cluster.cloud_outage_at(from, until);
                }
                ChaosEvent::RingOutage { from, until, site } => {
                    cluster.ring_outage_at(from, until, site);
                }
                // Slow nodes, congested links, degraded uplinks, and
                // Byzantine liars live entirely in the network's fault
                // plan; the cluster consults the plan's oracles at
                // dispatch and delivery time rather than scheduling
                // anything per node.
                ChaosEvent::Partition { .. }
                | ChaosEvent::LossBurst { .. }
                | ChaosEvent::SlowNode { .. }
                | ChaosEvent::Congestion { .. }
                | ChaosEvent::UplinkDegraded { .. }
                | ChaosEvent::ByzantineLiar { .. } => {}
            }
        }
    }
}

/// Predicts the [`OpId`] of the `n`-th client op submitted through
/// `coordinator` (0-based), assuming all submissions use distinct times.
///
/// Coordinators assign sequence numbers in event-time order, so a test
/// that submits at strictly increasing times can map completions back to
/// the keys it submitted.
pub fn nth_op_id(coordinator: NodeId, n: u64) -> OpId {
    OpId {
        coordinator,
        seq: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::msg::{ClientOp, OpResult};
    use crate::sim::OpLatency;
    use bytes::Bytes;
    use ef_netsim::{NetworkConfig, TopologyBuilder};
    use std::collections::HashMap;

    const KEYS: u32 = 12;
    const REPEATS: u32 = 3;

    fn testbed() -> Network {
        let topo = TopologyBuilder::new()
            .edge_site(2)
            .edge_site(2)
            .edge_site(2)
            .build();
        Network::new(topo, NetworkConfig::paper_testbed())
    }

    /// Runs one full chaos experiment: every key is check-and-inserted
    /// `REPEATS` times through rotating coordinators while the scenario
    /// crashes nodes, partitions sites, and drops messages. Returns the
    /// completions plus the op→key map needed for soundness accounting.
    fn run_chaos(seed: u64) -> (Vec<OpLatency>, HashMap<OpId, u32>, SimCluster) {
        let config = ChaosScenarioConfig::default();
        let mut net = testbed();
        let scenario = ChaosScenario::generate(seed, net.topology(), &config);
        scenario.rig(&mut net);
        let members = net.topology().edge_nodes();
        let mut cluster = SimCluster::new(members.clone(), net, ClusterConfig::default());
        cluster.enable_heartbeats(SimDuration::from_millis(100), SimDuration::from_millis(350));
        // The whole sweep runs with the fingerprint cache on: the
        // soundness and completion properties below must hold with
        // cached duplicate verdicts in the mix, and the tiny capacity
        // forces evictions so that path is exercised too.
        cluster.enable_fingerprint_cache(1, 2);
        scenario.apply(&mut cluster);

        let mut key_of: HashMap<OpId, u32> = HashMap::new();
        let mut next_seq: HashMap<NodeId, u64> = HashMap::new();
        let mut t = SimTime::ZERO + SimDuration::from_millis(13);
        for rep in 0..REPEATS {
            for k in 0..KEYS {
                // Coordinators rotate across keys so crashes and
                // partitions hit some of them. Reps 0 and 1 route a key
                // through the *same* coordinator — the second pass is the
                // fingerprint cache's local duplicate verdict — while the
                // final rep shifts coordinators so cross-coordinator
                // duplicates still traverse the ring under chaos.
                let shift = usize::from(rep + 1 == REPEATS);
                let coordinator = members[(k as usize + shift) % members.len()];
                let seq = next_seq.entry(coordinator).or_insert(0);
                key_of.insert(nth_op_id(coordinator, *seq), k);
                *seq += 1;
                let key = Bytes::from(k.to_be_bytes().to_vec());
                cluster.submit(t, coordinator, ClientOp::CheckAndInsert(key.clone(), key));
                t += SimDuration::from_millis(211);
            }
        }
        // Horizon: the scenario window plus the worst-case RTO chain of
        // both CAI phases (~4 s with the auto policy), with slack.
        let horizon = SimTime::ZERO + config.duration * 3u64;
        let done = cluster.run_until(horizon);
        (done, key_of, cluster)
    }

    #[test]
    fn chaos_sweep_soundness_and_completion() {
        let mut total_timeouts = 0;
        let mut total_degraded = 0;
        let mut total_dropped = 0;
        let mut cache = crate::cache::CacheStats::default();
        for seed in 0..25u64 {
            let (done, key_of, cluster) = run_chaos(seed);
            // (b) Every submitted op resolved: completed, timed out, or
            // degraded — nothing hangs.
            assert_eq!(cluster.inflight(), 0, "seed {seed}: ops still in flight");
            assert_eq!(done.len(), (KEYS * REPEATS) as usize, "seed {seed}");

            // (a) Zero false duplicates: a duplicate verdict for a key
            // requires some check-and-insert of that key to have resolved
            // unique (that op wrote the value the duplicate saw).
            let mut uniques: HashMap<u32, u32> = HashMap::new();
            let mut dups: HashMap<u32, u32> = HashMap::new();
            for l in &done {
                let key = key_of[&l.op_id];
                match l.result {
                    OpResult::Dedup { unique: true, .. } => {
                        *uniques.entry(key).or_insert(0) += 1;
                    }
                    OpResult::Dedup { unique: false, .. } => {
                        *dups.entry(key).or_insert(0) += 1;
                    }
                    ref other => {
                        panic!("seed {seed}: check-and-insert resolved {other:?}")
                    }
                }
            }
            for (key, d) in &dups {
                assert!(
                    uniques.get(key).copied().unwrap_or(0) >= 1,
                    "seed {seed}: key {key} judged duplicate {d} times but \
                     never inserted — false duplicate (data loss)"
                );
            }
            total_timeouts += cluster.timeouts();
            total_degraded += cluster.degraded_ops();
            total_dropped += cluster.network().messages_dropped();
            cache.absorb(&cluster.cache_stats());
        }
        // The sweep must actually exercise the chaos paths, or the
        // properties above are vacuous.
        assert!(total_dropped > 0, "no message was ever dropped");
        assert!(total_timeouts > 0, "no op ever timed out");
        assert!(total_degraded > 0, "no op ever degraded");
        // Likewise the cache: the soundness property above is only
        // meaningful with cached duplicate verdicts (and evictions)
        // actually occurring across the sweep.
        assert!(cache.hits > 0, "the fingerprint cache never hit: {cache:?}");
        assert!(
            cache.evictions > 0,
            "the tiny cache never evicted: {cache:?}"
        );
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        for seed in [0u64, 7, 42] {
            let (a, _, _) = run_chaos(seed);
            let (b, _, _) = run_chaos(seed);
            assert_eq!(a, b, "seed {seed}: traces diverged on replay");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _, _) = run_chaos(1);
        let (b, _, _) = run_chaos(2);
        assert_ne!(a, b, "distinct seeds produced identical traces");
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let net = testbed();
        let cfg = ChaosScenarioConfig::default();
        let s1 = ChaosScenario::generate(9, net.topology(), &cfg);
        let s2 = ChaosScenario::generate(9, net.topology(), &cfg);
        let s3 = ChaosScenario::generate(10, net.topology(), &cfg);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(
            s1.events().len(),
            2 * cfg.crashes
                + cfg.partitions
                + cfg.loss_bursts
                + 2 * cfg.crash_stops
                + cfg.departures
                + cfg.storage_rots
                + cfg.slow_nodes
                + cfg.storage_stalls
                + cfg.congestions
        );
    }

    #[test]
    fn storage_rot_events_are_seeded_and_wire_rot_reaches_the_plan() {
        let net = testbed();
        let cfg = ChaosScenarioConfig {
            crashes: 0,
            partitions: 0,
            loss_bursts: 0,
            base_loss: 0.0,
            storage_rots: 2,
            wire_rot: 1.0,
            ..ChaosScenarioConfig::default()
        };
        let s = ChaosScenario::generate(4, net.topology(), &cfg);
        assert_eq!(s.events().len(), 2);
        let mut seeds = std::collections::BTreeSet::new();
        for ev in s.events() {
            let ChaosEvent::StorageRot { at, rot_seed, .. } = *ev else {
                panic!("expected storage rot, got {ev:?}");
            };
            assert!(at > SimTime::ZERO);
            seeds.insert(rot_seed);
        }
        assert_eq!(seeds.len(), 2, "rot seeds must be distinct");
        // The wire-rot knob reaches the fault plan: with probability 1
        // every non-loopback frame is flagged corrupt (not dropped).
        let mut rigged = testbed();
        s.rig(&mut rigged);
        let nodes = rigged.topology().edge_nodes();
        let delivery = rigged
            .send_framed(SimTime::ZERO, nodes[0], nodes[1], 64)
            .unwrap()
            .expect("bit rot corrupts, never drops");
        assert!(delivery.corrupt, "frame survived total wire rot intact");
    }

    #[test]
    fn adding_rot_leaves_the_existing_schedule_untouched() {
        // The storage-rot draws are appended after every existing draw,
        // so turning rot on extends a scenario instead of reshuffling it:
        // the crash/partition/loss/departure schedule stays bit-identical.
        let net = testbed();
        let base = ChaosScenarioConfig::default();
        let rotted = ChaosScenarioConfig {
            storage_rots: 3,
            wire_rot: 0.02,
            ..base
        };
        let plain = ChaosScenario::generate(11, net.topology(), &base);
        let extended = ChaosScenario::generate(11, net.topology(), &rotted);
        assert_eq!(
            &extended.events()[..plain.events().len()],
            plain.events(),
            "rot knobs reshuffled the pre-existing schedule"
        );
        assert_eq!(
            extended.events().len(),
            plain.events().len() + rotted.storage_rots
        );
    }

    #[test]
    fn adding_slow_faults_leaves_the_existing_schedule_untouched() {
        // Same append-only discipline as storage rot: the gray-failure
        // draws run after every pre-existing draw, so turning them on
        // extends a scenario without reshuffling it.
        let net = testbed();
        let base = ChaosScenarioConfig {
            storage_rots: 2,
            ..ChaosScenarioConfig::default()
        };
        let grayed = ChaosScenarioConfig {
            slow_nodes: 2,
            storage_stalls: 1,
            congestions: 1,
            max_slow_factor: 6.0,
            ..base
        };
        let plain = ChaosScenario::generate(17, net.topology(), &base);
        let extended = ChaosScenario::generate(17, net.topology(), &grayed);
        assert_eq!(
            &extended.events()[..plain.events().len()],
            plain.events(),
            "gray-failure knobs reshuffled the pre-existing schedule"
        );
        assert_eq!(
            extended.events().len(),
            plain.events().len() + grayed.slow_nodes + grayed.storage_stalls + grayed.congestions
        );
    }

    fn cloud_testbed() -> Network {
        let topo = TopologyBuilder::new()
            .edge_site(2)
            .edge_site(2)
            .edge_site(2)
            .cloud_site(1)
            .build();
        Network::new(topo, NetworkConfig::paper_testbed())
    }

    #[test]
    fn adding_disasters_leaves_the_existing_schedule_untouched() {
        // Same append-only discipline as rot and gray failures: the
        // disaster draws run after every pre-existing draw.
        let net = cloud_testbed();
        let base = ChaosScenarioConfig {
            storage_rots: 1,
            slow_nodes: 1,
            congestions: 1,
            ..ChaosScenarioConfig::default()
        };
        let disastered = ChaosScenarioConfig {
            cloud_outages: 1,
            ring_outages: 1,
            uplink_degrades: 1,
            ..base
        };
        let plain = ChaosScenario::generate(23, net.topology(), &base);
        let extended = ChaosScenario::generate(23, net.topology(), &disastered);
        assert_eq!(
            &extended.events()[..plain.events().len()],
            plain.events(),
            "disaster knobs reshuffled the pre-existing schedule"
        );
        assert_eq!(extended.events().len(), plain.events().len() + 3);
    }

    #[test]
    fn disaster_windows_respect_their_bands_and_reach_the_plan() {
        let net = cloud_testbed();
        let cfg = ChaosScenarioConfig {
            crashes: 0,
            partitions: 0,
            loss_bursts: 0,
            base_loss: 0.0,
            cloud_outages: 1,
            ring_outages: 1,
            uplink_degrades: 1,
            ..ChaosScenarioConfig::default()
        };
        for seed in 0..20u64 {
            let s = ChaosScenario::generate(seed, net.topology(), &cfg);
            assert_eq!(s.events().len(), 3, "seed {seed}");
            let dur = cfg.duration;
            let half = SimTime::ZERO + dur * 0.5;
            let Some(&ChaosEvent::CloudOutage { from, until, site }) = s
                .events()
                .iter()
                .find(|e| matches!(e, ChaosEvent::CloudOutage { .. }))
            else {
                panic!("seed {seed}: expected a cloud outage");
            };
            assert!(from < until && until <= half, "seed {seed}: outage band");
            assert_eq!(net.topology().site_kind(site), ef_netsim::SiteKind::Cloud);
            // The outage reaches the plan as an unconditional blackout
            // on every link touching the cloud site.
            let mut plan = s.fault_plan();
            let cloud = net.topology().cloud_nodes()[0];
            let edge = net.topology().edge_nodes()[0];
            let mid = from + (until - from) * 0.5;
            assert!(plan.blacked_out(edge, cloud, net.topology().site_of(edge), site, mid));
            assert!(!plan.blacked_out(edge, cloud, net.topology().site_of(edge), site, until));
            let Some(&ChaosEvent::RingOutage {
                from: r_from,
                until: r_until,
                site: r_site,
            }) = s
                .events()
                .iter()
                .find(|e| matches!(e, ChaosEvent::RingOutage { .. }))
            else {
                panic!("seed {seed}: expected a ring outage");
            };
            // Ring wipes start strictly after every cloud outage has
            // healed, so an undrained spool always gets a drain window
            // before the disaster that could destroy its last copy.
            assert!(r_from >= half, "seed {seed}: ring outage too early");
            assert!(r_from < r_until && r_until < SimTime::ZERO + dur);
            assert_eq!(net.topology().site_kind(r_site), ef_netsim::SiteKind::Edge);
            let Some(&ChaosEvent::UplinkDegraded {
                from: u_from,
                until: u_until,
                site: u_site,
                bandwidth_factor,
            }) = s
                .events()
                .iter()
                .find(|e| matches!(e, ChaosEvent::UplinkDegraded { .. }))
            else {
                panic!("seed {seed}: expected a degraded uplink");
            };
            assert!(u_from < u_until);
            assert!((1.0..=cfg.max_slow_factor).contains(&bandwidth_factor));
            // The cap reaches the plan as a throttle on the cloud site.
            let u_mid = u_from + (u_until - u_from) * 0.5;
            let got = plan.service_factor(u_mid, edge, cloud, net.topology().site_of(edge), u_site);
            assert!(
                got >= bandwidth_factor - 1e-12,
                "seed {seed}: throttle factor {bandwidth_factor} not applied: {got}"
            );
        }
    }

    #[test]
    fn adding_byzantine_liars_leaves_the_existing_schedule_untouched() {
        // Same append-only discipline as every fault family before it:
        // the Byzantine draws run after all pre-existing draws.
        let net = cloud_testbed();
        let base = ChaosScenarioConfig {
            storage_rots: 1,
            slow_nodes: 1,
            cloud_outages: 1,
            ring_outages: 1,
            ..ChaosScenarioConfig::default()
        };
        let lying = ChaosScenarioConfig {
            byzantine_liars: 2,
            ..base
        };
        let plain = ChaosScenario::generate(29, net.topology(), &base);
        let extended = ChaosScenario::generate(29, net.topology(), &lying);
        assert_eq!(
            &extended.events()[..plain.events().len()],
            plain.events(),
            "byzantine knob reshuffled the pre-existing schedule"
        );
        assert_eq!(extended.events().len(), plain.events().len() + 2);
    }

    #[test]
    fn byzantine_liars_are_a_bounded_minority_and_reach_the_plan() {
        let net = testbed();
        let cfg = ChaosScenarioConfig {
            crashes: 0,
            partitions: 0,
            loss_bursts: 0,
            base_loss: 0.0,
            // Ask for far more liars than tolerable: the clamp must
            // keep a strict majority of the six edge nodes honest.
            byzantine_liars: 6,
            ..ChaosScenarioConfig::default()
        };
        for seed in 0..20u64 {
            let s = ChaosScenario::generate(seed, net.topology(), &cfg);
            let edge = net.topology().edge_nodes();
            assert_eq!(s.events().len(), (edge.len() - 1) / 2, "seed {seed}");
            let mut liars = std::collections::BTreeSet::new();
            let dur = cfg.duration;
            for ev in s.events() {
                let ChaosEvent::ByzantineLiar { from, until, node } = *ev else {
                    panic!("seed {seed}: expected a liar, got {ev:?}");
                };
                assert!(liars.insert(node), "seed {seed}: liar {node} reused");
                // Windows open in the first 15% and close in the
                // 85–95% band, so quarantine convergence is on-screen.
                assert!(from < SimTime::ZERO + dur * 0.15, "seed {seed}");
                assert!(until >= SimTime::ZERO + dur * 0.85, "seed {seed}");
                assert!(until < SimTime::ZERO + dur, "seed {seed}");
                // The liar event arms all four behaviors in the plan.
                let plan = s.fault_plan();
                let mid = from + (until - from) * 0.5;
                assert!(plan.lies_on_lookup_at(node, mid), "seed {seed}");
                assert!(plan.serves_garbage_at(node, mid), "seed {seed}");
                assert!(plan.equivocates_at(node, mid), "seed {seed}");
                assert!(plan.hint_floods_at(node, mid), "seed {seed}");
                assert!(!plan.lies_on_lookup_at(node, until), "seed {seed}");
            }
            assert!(2 * liars.len() < edge.len(), "seed {seed}: liar majority");
        }
    }

    #[test]
    fn cloud_disasters_skip_drawlessly_without_a_cloud_site() {
        // On a cloud-less topology the cloud-outage and uplink knobs
        // must not consume randomness, or enabling them would reshuffle
        // the ring-outage draws that follow.
        let net = testbed();
        let base = ChaosScenarioConfig {
            ring_outages: 1,
            ..ChaosScenarioConfig::default()
        };
        let with_cloud_knobs = ChaosScenarioConfig {
            cloud_outages: 3,
            uplink_degrades: 2,
            ..base
        };
        let a = ChaosScenario::generate(31, net.topology(), &base);
        let b = ChaosScenario::generate(31, net.topology(), &with_cloud_knobs);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn slow_events_reach_the_fault_plan() {
        let net = testbed();
        let cfg = ChaosScenarioConfig {
            crashes: 0,
            partitions: 0,
            loss_bursts: 0,
            base_loss: 0.0,
            slow_nodes: 1,
            congestions: 1,
            storage_stalls: 1,
            max_slow_factor: 6.0,
            ..ChaosScenarioConfig::default()
        };
        let s = ChaosScenario::generate(8, net.topology(), &cfg);
        assert_eq!(s.events().len(), 3);
        let Some(&ChaosEvent::SlowNode {
            from,
            until,
            node,
            service_factor,
        }) = s
            .events()
            .iter()
            .find(|e| matches!(e, ChaosEvent::SlowNode { .. }))
        else {
            panic!("expected a slow-node event");
        };
        assert!(from < until);
        assert!((1.0..=cfg.max_slow_factor).contains(&service_factor));
        let plan = s.fault_plan();
        // The slow window is visible to the gray-node oracle for its
        // whole duration and nowhere outside it.
        let mid = from + (until - from) * 0.5;
        assert!(plan.is_slow_at(node, mid));
        assert!(!plan.is_slow_at(node, until));
        let Some(&ChaosEvent::Congestion {
            from: c_from,
            a,
            b,
            bandwidth_factor,
            ..
        }) = s
            .events()
            .iter()
            .find(|e| matches!(e, ChaosEvent::Congestion { .. }))
        else {
            panic!("expected a congestion event");
        };
        assert_ne!(a, b, "congestion must pick distinct sites");
        assert!((1.0..=cfg.max_slow_factor).contains(&bandwidth_factor));
        // The throttle reaches the plan: a message between the congested
        // sites during the window sees a stretched service factor.
        let mut plan = plan;
        let nodes = net.topology().edge_nodes();
        let got = plan.service_factor(c_from, nodes[0], nodes[1], a, b);
        assert!(
            (got - bandwidth_factor).abs() < 1e-12 || got > bandwidth_factor,
            "throttle factor {bandwidth_factor} not applied: {got}"
        );
    }

    #[test]
    fn crash_stops_and_departures_pick_distinct_victims() {
        let net = testbed();
        let cfg = ChaosScenarioConfig {
            crashes: 0,
            partitions: 0,
            loss_bursts: 0,
            crash_stops: 2,
            departures: 1,
            ..ChaosScenarioConfig::default()
        };
        for seed in 0..20u64 {
            let s = ChaosScenario::generate(seed, net.topology(), &cfg);
            assert_eq!(s.events().len(), 2 * cfg.crash_stops + cfg.departures);
            let mut victims = std::collections::BTreeSet::new();
            for ev in s.events() {
                match *ev {
                    ChaosEvent::CrashStop { node, .. } | ChaosEvent::Depart { node, .. } => {
                        assert!(victims.insert(node), "seed {seed}: victim {node} reused");
                    }
                    ChaosEvent::Restart { at, node } => {
                        assert!(victims.contains(&node), "seed {seed}: restart of {node}");
                        assert!(at > SimTime::ZERO);
                    }
                    ref other => panic!("seed {seed}: unexpected event {other:?}"),
                }
            }
            // Six edge nodes, two crash-stopped (they come back), one
            // departed: at least two members never faulted at all.
            assert!(victims.len() <= 3);
        }
    }

    #[test]
    fn fault_plan_reflects_partitions() {
        let net = testbed();
        let cfg = ChaosScenarioConfig {
            partitions: 1,
            crashes: 0,
            loss_bursts: 0,
            ..ChaosScenarioConfig::default()
        };
        let s = ChaosScenario::generate(3, net.topology(), &cfg);
        let Some(ChaosEvent::Partition { a, b, from, .. }) = s.events().first().copied() else {
            panic!("expected a partition event");
        };
        let plan = s.fault_plan();
        assert!(plan.partitioned(a, b, from));
    }
}
