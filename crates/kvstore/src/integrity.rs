//! End-to-end integrity: checksums, typed corruption errors, and the
//! counters that account for every detected/repaired/lost byte.
//!
//! A dedup index is uniquely fragile to *silent* corruption: one flipped
//! bit in an index entry can manufacture a false duplicate — the exact
//! soundness property the D2-ring design depends on. Every durable or
//! wire-crossing byte in this crate therefore carries a checksum
//! ([`checksum64`]), every read boundary verifies it, and every verdict
//! (rejected frame, scrubbed entry, repaired or lost record) lands in
//! [`IntegrityStats`] — detected corruption is a typed event, never a
//! panic and never silently-accepted data.

use serde::{Deserialize, Serialize};

/// Streaming 64-bit checksum: FNV-1a over the input with a splitmix64
/// avalanche finisher (the same construction as the ring's `key_token`,
/// under a different offset basis so index tokens and checksums never
/// collide structurally).
///
/// Not cryptographic — it detects the random bit flips the fault model
/// injects, like the CRCs real storage engines use.
#[derive(Debug, Clone, Copy)]
pub struct Checksum64 {
    state: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Checksum64::new()
    }
}

impl Checksum64 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        // FNV offset basis, perturbed so a checksum of a key never equals
        // the ring's `key_token` of the same bytes.
        Checksum64 {
            state: 0xcbf2_9ce4_8422_2325 ^ 0x5bd1_e995,
        }
    }

    /// Mixes `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// Mixes a length-prefixed field boundary into the state, so
    /// `("ab", "c")` and `("a", "bc")` digest differently.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finalizes with a splitmix64 avalanche.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut c = Checksum64::new();
    c.update(bytes);
    c.finish()
}

/// A detected integrity violation: stored or received bytes no longer
/// match their recorded checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// A stored value failed verification on read.
    CorruptValue {
        /// The key whose value failed verification.
        key: bytes::Bytes,
        /// The checksum recorded at write time.
        expected: u64,
        /// The checksum of the bytes actually read.
        actual: u64,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::CorruptValue {
                key,
                expected,
                actual,
            } => write!(
                f,
                "value for key ({} bytes) failed checksum: expected {expected:#x}, got {actual:#x}",
                key.len()
            ),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Counters of everything the integrity layer detected, repaired, or
/// declared lost. Zero across the board for a clean run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IntegrityStats {
    /// Wire frames whose checksum failed on delivery (dropped; the
    /// sender's retry machinery re-sends).
    #[serde(default)]
    pub frames_rejected: u64,
    /// Stored entries the background scrub verified.
    #[serde(default)]
    pub entries_scrubbed: u64,
    /// Bytes of key+value payload the scrub verified.
    #[serde(default)]
    pub scrub_bytes: u64,
    /// Checksum mismatches found at any storage read boundary (scrub,
    /// local read, replica read).
    #[serde(default)]
    pub mismatches_found: u64,
    /// Corrupt entries restored from a clean ring replica.
    #[serde(default)]
    pub read_repairs: u64,
    /// Corrupt entries restored by decoding the cloud catalog.
    #[serde(default)]
    pub cloud_decodes: u64,
    /// Replicas quarantined after repeated verification failures.
    #[serde(default)]
    pub quarantines: u64,
    /// Corrupt entries no surviving replica or catalog could restore —
    /// explicitly declared lost, never silently accepted.
    #[serde(default)]
    pub lost_records: u64,
    /// WAL tails truncated to their last valid record at recovery.
    #[serde(default)]
    pub torn_tails_truncated: u64,
    /// Recoveries that fell back to the prior snapshot after the current
    /// snapshot failed its checksum.
    #[serde(default)]
    pub snapshot_fallbacks: u64,
    /// Restarts abandoned because the WAL body (not just the tail) was
    /// corrupt beyond the snapshot fallback.
    #[serde(default)]
    pub wal_corrupt_bodies: u64,
}

impl IntegrityStats {
    /// Accumulates another stats block into this one (used to carry a
    /// node's counters across crash-stop/restart cycles).
    pub fn merge(&mut self, other: &IntegrityStats) {
        self.frames_rejected += other.frames_rejected;
        self.entries_scrubbed += other.entries_scrubbed;
        self.scrub_bytes += other.scrub_bytes;
        self.mismatches_found += other.mismatches_found;
        self.read_repairs += other.read_repairs;
        self.cloud_decodes += other.cloud_decodes;
        self.quarantines += other.quarantines;
        self.lost_records += other.lost_records;
        self.torn_tails_truncated += other.torn_tails_truncated;
        self.snapshot_fallbacks += other.snapshot_fallbacks;
        self.wal_corrupt_bodies += other.wal_corrupt_bodies;
    }

    /// True when nothing was detected, repaired, or lost.
    pub fn is_quiet(&self) -> bool {
        *self == IntegrityStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_input_sensitive() {
        assert_eq!(checksum64(b"hello"), checksum64(b"hello"));
        assert_ne!(checksum64(b"hello"), checksum64(b"hellp"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = checksum64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut rotted = base.clone();
                rotted[byte] ^= 1 << bit;
                assert_ne!(checksum64(&rotted), clean, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn field_boundaries_are_length_delimited() {
        let mut a = Checksum64::new();
        a.update_u64(2);
        a.update(b"ab");
        a.update_u64(1);
        a.update(b"c");
        let mut b = Checksum64::new();
        b.update_u64(1);
        b.update(b"a");
        b.update_u64(2);
        b.update(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn checksum_differs_from_key_token() {
        // Structural independence from the ring's placement hash.
        assert_ne!(checksum64(b"chunk"), crate::key_token(b"chunk"));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = IntegrityStats {
            frames_rejected: 1,
            mismatches_found: 2,
            ..IntegrityStats::default()
        };
        let b = IntegrityStats {
            frames_rejected: 3,
            read_repairs: 4,
            ..IntegrityStats::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_rejected, 4);
        assert_eq!(a.mismatches_found, 2);
        assert_eq!(a.read_repairs, 4);
        assert!(!a.is_quiet());
        assert!(IntegrityStats::default().is_quiet());
    }

    #[test]
    fn error_display_names_the_checksums() {
        let e = IntegrityError::CorruptValue {
            key: bytes::Bytes::from_static(b"k"),
            expected: 0xab,
            actual: 0xcd,
        };
        let s = e.to_string();
        assert!(s.contains("0xab") && s.contains("0xcd"), "{s}");
    }
}
