//! Proof-of-possession dedup and the per-peer trust ledger.
//!
//! EF-Dedup's core transaction — a peer answering "I already hold this
//! fingerprint", which suppresses the client's upload — is an
//! unauthenticated claim: one lying index entry silently loses data.
//! Following PM-Dedup's edge ownership checks, a positive *remote*
//! sighting may only complete a dedup verdict after the claiming
//! replica answers a challenge–response **proof of possession**: a
//! salted SHA-256 over a challenge-chosen slice of its stored bytes.
//! The coordinator holds the full chunk it is deduplicating (the store
//! is content-addressed: same key ⇒ same bytes), so it can compute the
//! expected digest locally and compare — a liar that only copied the
//! fingerprint index cannot answer without the bytes.
//!
//! Challenge parameters are a **pure function** of the scenario's
//! proof seed, the operation id, the key token, and the prover
//! ([`derive_challenge`]): the service path draws zero RNG, so
//! replays stay bit-identical and a prover cannot predict or replay
//! challenges across ops.
//!
//! Provably wrong answers — a digest mismatch, or bytes that fail
//! content-address verification on repair and restore paths — feed the
//! per-peer [`TrustLedger`]. Strikes are only charged for *proof* of
//! lying, never for silence: a timeout on a lossy link must never
//! quarantine an honest node. At [`TrustLedger::STRIKE_THRESHOLD`]
//! strikes the peer is handed to the existing quarantine → `Suspect`
//! → `Dead` lattice, evicted, and re-replicated around.

use ef_chunking::Sha256;
use ef_netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::msg::OpId;

/// One derived proof-of-possession challenge.
///
/// Mirrors the fields of [`crate::Message::PopChallenge`]; the prover
/// and the coordinator both feed them to [`pop_digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopChallenge {
    /// Salt mixed into the digest so answers cannot be precomputed
    /// per key or replayed across operations.
    pub nonce: u64,
    /// Slice offset seed, wrapped modulo the chunk length.
    pub offset: u32,
    /// Slice length cap.
    pub len: u32,
}

/// Shortest challenged slice, in bytes.
const POP_SLICE_MIN: u32 = 64;
/// Longest challenged slice, in bytes.
const POP_SLICE_MAX: u32 = 512;

/// SplitMix64 output function: the standard finalizer used throughout
/// the repo for stateless seed-derived streams.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the challenge for `prover`'s claim on the op's key.
///
/// A pure function of `(pop_seed, op_id, key_token, prover)`: the
/// service path consumes no RNG draws, so enabling proofs never
/// perturbs the seeded fault schedule and replays stay bit-identical.
/// Distinct ops (and distinct provers within an op, as on hedged
/// lookups) get independent challenges, so an answer observed once
/// cannot be replayed.
pub fn derive_challenge(
    pop_seed: u64,
    op_id: OpId,
    key_token: u64,
    prover: NodeId,
) -> PopChallenge {
    let mut s = pop_seed;
    for input in [
        op_id.coordinator.0 as u64,
        op_id.seq,
        key_token,
        prover.0 as u64,
    ] {
        s = splitmix(s ^ input);
    }
    let nonce = splitmix(s);
    let offset = (splitmix(nonce) >> 32) as u32;
    let span = POP_SLICE_MAX - POP_SLICE_MIN + 1;
    let len = POP_SLICE_MIN + (splitmix(nonce ^ 0x5bd1_e995) % u64::from(span)) as u32;
    PopChallenge { nonce, offset, len }
}

/// The proof digest: SHA-256 over the challenge salt followed by the
/// challenged slice of `value`.
///
/// The offset wraps modulo the chunk length and the slice wraps around
/// the end, so every challenge is answerable for any non-empty chunk
/// while still covering seed-chosen bytes a fingerprint-only liar
/// never stored. Built on the repo's from-scratch SHA-256
/// ([`ef_chunking::Sha256`]).
pub fn pop_digest(challenge: PopChallenge, value: &[u8]) -> [u8; 32] {
    let take = (challenge.len as usize).min(value.len());
    let mut buf = Vec::with_capacity(8 + take);
    buf.extend_from_slice(&challenge.nonce.to_le_bytes());
    if !value.is_empty() {
        // `take <= value.len()`, so the wrapped slice is at most two
        // contiguous segments.
        let start = (challenge.offset as usize) % value.len();
        let first = take.min(value.len() - start);
        buf.extend_from_slice(&value[start..start + first]);
        buf.extend_from_slice(&value[..take - first]);
    }
    Sha256::digest(&buf)
}

/// Per-peer strike ledger: counts provable lies and decides when a
/// peer graduates to quarantine.
///
/// Strikes are charged only on cryptographic proof of misbehavior —
/// a possession digest that fails verification, peer-served bytes
/// that fail content-address verification, or an anti-entropy summary
/// contradicted by its own stream. Timeouts and drops never strike,
/// so lossy-network innocents are never quarantined.
#[derive(Debug, Clone, Default)]
pub struct TrustLedger {
    strikes: BTreeMap<NodeId, u32>,
}

impl TrustLedger {
    /// Strikes at which a peer is handed to the quarantine lattice.
    ///
    /// Three provable lies: low enough that a persistent liar is
    /// evicted well inside one scenario window, high enough that a
    /// single in-flight corruption coinciding with rot cannot evict
    /// an honest replica.
    pub const STRIKE_THRESHOLD: u32 = 3;

    /// A fresh ledger with no strikes recorded.
    pub fn new() -> Self {
        TrustLedger::default()
    }

    /// Records one provable lie by `peer`. Returns `true` exactly once
    /// — when the peer first crosses [`TrustLedger::STRIKE_THRESHOLD`]
    /// — so the caller quarantines it a single time.
    pub fn strike(&mut self, peer: NodeId) -> bool {
        let count = self.strikes.entry(peer).or_insert(0);
        *count += 1;
        *count == Self::STRIKE_THRESHOLD
    }

    /// True when `peer` has at least one strike: steering paths (hedge
    /// target choice, repair-source choice) avoid striking peers even
    /// before they reach quarantine.
    pub fn is_striking(&self, peer: NodeId) -> bool {
        self.strikes_of(peer) > 0
    }

    /// The number of strikes recorded against `peer`.
    pub fn strikes_of(&self, peer: NodeId) -> u32 {
        self.strikes.get(&peer).copied().unwrap_or(0)
    }

    /// Peers with at least one strike, in id order.
    pub fn striking_peers(&self) -> Vec<NodeId> {
        self.strikes.keys().copied().collect()
    }
}

/// Byzantine-defense counters, merged into
/// `RobustnessMetrics::byzantine`.
///
/// All-zero unless proof-of-possession was enabled, so clean-run
/// quietness checks hold unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ByzantineStats {
    /// Possession challenges sent to claiming replicas.
    #[serde(default)]
    pub challenges_issued: u64,
    /// Challenges answered with a verifying digest.
    #[serde(default)]
    pub challenges_passed: u64,
    /// Challenges answered with a wrong digest or a held=false
    /// retraction — the sighting was reverted, never trusted.
    #[serde(default)]
    pub challenges_failed: u64,
    /// Positive sightings completed from the proven-possession cache
    /// without a fresh challenge round-trip.
    #[serde(default)]
    pub pop_cache_hits: u64,
    /// Duplicate verdicts that would have been false: a positive
    /// sighting rejected by proof of possession with no honest replica
    /// confirming the claim.
    #[serde(default)]
    pub false_claims_rejected: u64,
    /// Peer-served repair/restore bytes rejected by content-address
    /// verification before reaching a store.
    #[serde(default)]
    pub poisoned_bytes_rejected: u64,
    /// Bogus hint-replay frames suppressed at delivery.
    #[serde(default)]
    pub hint_floods_suppressed: u64,
    /// Anti-entropy summaries contradicted by their own stream.
    #[serde(default)]
    pub equivocations_detected: u64,
    /// Strikes charged to peers for provable lies.
    #[serde(default)]
    pub liar_strikes: u64,
    /// Peers quarantined after crossing the strike threshold.
    #[serde(default)]
    pub liars_quarantined: u64,
    /// Fingerprint-cache entries invalidated because their source peer
    /// was later quarantined for lying.
    #[serde(default)]
    pub cache_invalidations: u64,
    /// Repair fetches re-issued to the next-rarest holder (or the
    /// cloud catalog) after a poisoned response.
    #[serde(default)]
    pub refetches: u64,
}

impl ByzantineStats {
    /// Folds `other` into `self`, field by field.
    pub fn absorb(&mut self, other: &ByzantineStats) {
        self.challenges_issued += other.challenges_issued;
        self.challenges_passed += other.challenges_passed;
        self.challenges_failed += other.challenges_failed;
        self.pop_cache_hits += other.pop_cache_hits;
        self.false_claims_rejected += other.false_claims_rejected;
        self.poisoned_bytes_rejected += other.poisoned_bytes_rejected;
        self.hint_floods_suppressed += other.hint_floods_suppressed;
        self.equivocations_detected += other.equivocations_detected;
        self.liar_strikes += other.liar_strikes;
        self.liars_quarantined += other.liars_quarantined;
        self.cache_invalidations += other.cache_invalidations;
        self.refetches += other.refetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn op(coordinator: u32, seq: u64) -> OpId {
        OpId {
            coordinator: NodeId(coordinator),
            seq,
        }
    }

    #[test]
    fn challenges_are_deterministic_and_distinct_per_op_and_prover() {
        let a = derive_challenge(7, op(0, 1), 99, NodeId(2));
        let b = derive_challenge(7, op(0, 1), 99, NodeId(2));
        assert_eq!(a, b, "same inputs must derive the same challenge");
        // Different op, prover, key, or seed: independent challenges.
        assert_ne!(a, derive_challenge(7, op(0, 2), 99, NodeId(2)));
        assert_ne!(a, derive_challenge(7, op(0, 1), 99, NodeId(3)));
        assert_ne!(a, derive_challenge(7, op(0, 1), 98, NodeId(2)));
        assert_ne!(a, derive_challenge(8, op(0, 1), 99, NodeId(2)));
    }

    #[test]
    fn slice_lengths_stay_in_their_band() {
        for seq in 0..200u64 {
            let c = derive_challenge(42, op(1, seq), seq.wrapping_mul(31), NodeId(4));
            assert!((POP_SLICE_MIN..=POP_SLICE_MAX).contains(&c.len), "{c:?}");
        }
    }

    #[test]
    fn empty_chunks_are_still_answerable() {
        let c = derive_challenge(1, op(0, 0), 0, NodeId(1));
        // Salt-only digest: stable, and distinct from any non-empty one.
        assert_eq!(pop_digest(c, b""), pop_digest(c, b""));
        assert_ne!(pop_digest(c, b""), pop_digest(c, b"x"));
    }

    #[test]
    fn ledger_quarantines_exactly_once_at_the_threshold() {
        let mut ledger = TrustLedger::new();
        let liar = NodeId(3);
        assert!(!ledger.is_striking(liar));
        for i in 1..TrustLedger::STRIKE_THRESHOLD {
            assert!(!ledger.strike(liar), "strike {i} must not quarantine");
            assert!(ledger.is_striking(liar));
        }
        assert!(ledger.strike(liar), "threshold strike must quarantine");
        assert!(!ledger.strike(liar), "quarantine fires exactly once");
        assert_eq!(ledger.strikes_of(liar), TrustLedger::STRIKE_THRESHOLD + 1);
        assert_eq!(ledger.striking_peers(), vec![liar]);
        assert_eq!(ledger.strikes_of(NodeId(0)), 0);
    }

    #[test]
    fn stats_absorb_is_fieldwise() {
        let mut a = ByzantineStats {
            challenges_issued: 1,
            liar_strikes: 2,
            ..ByzantineStats::default()
        };
        let b = ByzantineStats {
            challenges_issued: 3,
            refetches: 5,
            ..ByzantineStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.challenges_issued, 4);
        assert_eq!(a.liar_strikes, 2);
        assert_eq!(a.refetches, 5);
    }

    proptest! {
        /// An honest prover — one that actually stores the chunk —
        /// always passes its own challenge.
        #[test]
        fn honest_prover_always_passes(
            seed in any::<u64>(),
            seq in any::<u64>(),
            token in any::<u64>(),
            value in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let c = derive_challenge(seed, op(0, seq), token, NodeId(1));
            prop_assert_eq!(pop_digest(c, &value), pop_digest(c, &value));
        }

        /// Garbage or truncated bytes never produce the stored chunk's
        /// digest: a liar fabricating or partially holding data fails.
        #[test]
        fn garbage_and_partial_data_never_pass(
            seed in any::<u64>(),
            seq in any::<u64>(),
            value in proptest::collection::vec(any::<u8>(), 1..1024),
            flip in any::<u8>(),
        ) {
            let c = derive_challenge(seed, op(0, seq), 7, NodeId(1));
            let expected = pop_digest(c, &value);
            // Any single flipped byte inside the challenged span moves
            // the digest (SHA-256 second-preimage resistance stands in
            // for "garbage never passes").
            let mut garbled = value.clone();
            let start = (c.offset as usize) % garbled.len();
            garbled[start] ^= flip | 1;
            prop_assert_ne!(pop_digest(c, &garbled), expected);
            // Truncating the chunk (a partial holder) also fails
            // whenever any bytes were challenged.
            if value.len() > 1 {
                let partial = &value[..value.len() - 1];
                prop_assert_ne!(pop_digest(c, partial), expected);
            }
        }

        /// Derivation is a pure function: re-deriving from the same
        /// scenario inputs yields the identical challenge, so the
        /// service path needs no RNG draws.
        #[test]
        fn derivation_is_pure(
            seed in any::<u64>(),
            coordinator in any::<u32>(),
            seq in any::<u64>(),
            token in any::<u64>(),
            prover in any::<u32>(),
        ) {
            let a = derive_challenge(seed, op(coordinator, seq), token, NodeId(prover));
            let b = derive_challenge(seed, op(coordinator, seq), token, NodeId(prover));
            prop_assert_eq!(a, b);
        }
    }
}
