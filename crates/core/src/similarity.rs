//! MinHash/LSH similarity estimation — the paper's future-work direction
//! ("we wish to improve the performance of our source estimation
//! algorithm through techniques like locality sensitive hashing").
//!
//! Algorithm 1 measures ground-truth dedup ratios by *jointly chunking*
//! every probe subset — `O(|subset| · chunks)` work per subset. MinHash
//! replaces the pairwise measurements with constant-size signatures:
//! each source is summarized once, pairwise Jaccard similarity follows
//! from signature agreement, and the pair dedup ratio derives from the
//! inclusion–exclusion identity
//! `|A ∪ B| = (|A| + |B|) / (1 + J)` for Jaccard `J = |A∩B| / |A∪B|`.
//! LSH banding then finds high-similarity source pairs without comparing
//! all `O(N²)` signatures.

use crate::estimator::GroundTruth;
use ef_chunking::ChunkHash;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A MinHash signature: for each of `h` hash permutations, the minimum
/// permuted value over the source's chunk-hash set.
///
/// # Example
///
/// ```
/// use efdedup::similarity::MinHashSignature;
/// use ef_chunking::ChunkHash;
///
/// let a: Vec<ChunkHash> = (0..100u32).map(|i| ChunkHash::of(&i.to_be_bytes())).collect();
/// let sig_a = MinHashSignature::from_hashes(a.iter().copied(), 128);
/// let sig_a2 = MinHashSignature::from_hashes(a.iter().copied(), 128);
/// assert_eq!(sig_a.jaccard(&sig_a2), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    mins: Vec<u64>,
    /// Number of distinct chunks summarized (exact, tracked alongside).
    distinct: usize,
}

/// Mixes a chunk hash with permutation seed `p` (SplitMix64 over the
/// 64-bit prefix xor a per-permutation constant).
fn permute(h: &ChunkHash, p: u64) -> u64 {
    let mut z = h.prefix64() ^ p.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MinHashSignature {
    /// Builds a signature with `permutations` hash functions over the
    /// *set* of chunk hashes (duplicates are deduplicated first).
    ///
    /// # Panics
    ///
    /// Panics when `permutations` is zero or the hash stream is empty.
    pub fn from_hashes<I: IntoIterator<Item = ChunkHash>>(hashes: I, permutations: usize) -> Self {
        assert!(permutations > 0, "need at least one permutation");
        let set: BTreeSet<ChunkHash> = hashes.into_iter().collect();
        assert!(!set.is_empty(), "cannot summarize an empty source");
        let mut mins = vec![u64::MAX; permutations];
        for h in &set {
            for (p, slot) in mins.iter_mut().enumerate() {
                let v = permute(h, p as u64 + 1);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        MinHashSignature {
            mins,
            distinct: set.len(),
        }
    }

    /// Number of permutations.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// Always false (construction forbids empty signatures).
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Exact number of distinct chunks this signature summarizes.
    pub fn distinct_chunks(&self) -> usize {
        self.distinct
    }

    /// Estimates Jaccard similarity as the fraction of agreeing
    /// signature slots.
    ///
    /// # Panics
    ///
    /// Panics when the signatures use different permutation counts.
    pub fn jaccard(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.len(), other.len(), "signature length mismatch");
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.mins.len() as f64
    }

    /// Estimates the size of the union `|A ∪ B|` via inclusion–exclusion
    /// on the Jaccard estimate.
    pub fn union_estimate(&self, other: &MinHashSignature) -> f64 {
        let j = self.jaccard(other);
        (self.distinct + other.distinct) as f64 / (1.0 + j)
    }

    /// The LSH band keys of this signature for `(bands, rows)` banding:
    /// two sources sharing any band key are candidate similars.
    ///
    /// # Panics
    ///
    /// Panics when `bands * rows` exceeds the signature length or either
    /// is zero.
    pub fn band_keys(&self, bands: usize, rows: usize) -> Vec<u64> {
        assert!(bands > 0 && rows > 0, "need positive banding");
        assert!(
            bands * rows <= self.mins.len(),
            "banding exceeds signature length"
        );
        (0..bands)
            .map(|b| {
                let mut acc: u64 = 0xcbf2_9ce4_8422_2325 ^ (b as u64);
                for r in 0..rows {
                    acc ^= self.mins[b * rows + r];
                    acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
                }
                acc
            })
            .collect()
    }
}

/// Finds candidate similar source pairs by LSH banding: pairs whose
/// signatures collide in at least one band.
///
/// Returns pairs `(i, j)` with `i < j`, sorted.
///
/// # Panics
///
/// Panics on inconsistent signature lengths or infeasible banding.
pub fn lsh_candidate_pairs(
    signatures: &[MinHashSignature],
    bands: usize,
    rows: usize,
) -> Vec<(usize, usize)> {
    let mut buckets: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for (i, sig) in signatures.iter().enumerate() {
        for (band, key) in sig.band_keys(bands, rows).into_iter().enumerate() {
            buckets.entry((band, key)).or_default().push(i);
        }
    }
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for members in buckets.values() {
        for (x, &i) in members.iter().enumerate() {
            for &j in &members[x + 1..] {
                pairs.insert((i.min(j), i.max(j)));
            }
        }
    }
    pairs.into_iter().collect()
}

/// Builds Algorithm 1 ground truth from MinHash signatures instead of
/// joint chunking: singleton ratios are exact (distinct counts are
/// tracked), pair ratios come from the union estimate. Subsets larger
/// than two are omitted — pairs are what the SNOD2 fit needs most, and
/// higher-order unions are not estimable from pairwise Jaccard alone.
///
/// `streams[i]` is source `i`'s chunk-hash stream (with duplicates —
/// the stream length is the sample's `R_i T`).
///
/// # Panics
///
/// Panics when `streams` is empty or any stream is empty.
pub fn minhash_ground_truth(streams: &[Vec<ChunkHash>], permutations: usize) -> GroundTruth {
    assert!(!streams.is_empty(), "need at least one source");
    let signatures: Vec<MinHashSignature> = streams
        .iter()
        .map(|s| MinHashSignature::from_hashes(s.iter().copied(), permutations))
        .collect();
    let n = streams.len();
    let mut subsets = Vec::new();
    let mut measured = Vec::new();
    for i in 0..n {
        subsets.push(vec![i]);
        measured.push(streams[i].len() as f64 / signatures[i].distinct_chunks() as f64);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            subsets.push(vec![i, j]);
            let total = (streams[i].len() + streams[j].len()) as f64;
            let union = signatures[i].union_estimate(&signatures[j]);
            measured.push(total / union.max(1.0));
        }
    }
    GroundTruth {
        subsets,
        measured,
        sample_chunks: streams.iter().map(|s| s.len() as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_chunking::{Chunker, FixedChunker};
    use ef_datagen::datasets;

    fn hashes_of(bytes: &[u8], chunk: usize) -> Vec<ChunkHash> {
        FixedChunker::new(chunk)
            .unwrap()
            .chunk(bytes)
            .into_iter()
            .map(|c| c.hash)
            .collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let hs: Vec<ChunkHash> = (0..50u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let a = MinHashSignature::from_hashes(hs.iter().copied(), 64);
        let b = MinHashSignature::from_hashes(hs.iter().copied(), 64);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.distinct_chunks(), 50);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let a: Vec<ChunkHash> = (0..200u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let b: Vec<ChunkHash> = (1000..1200u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let sa = MinHashSignature::from_hashes(a, 256);
        let sb = MinHashSignature::from_hashes(b, 256);
        assert!(sa.jaccard(&sb) < 0.05, "jaccard {}", sa.jaccard(&sb));
    }

    #[test]
    fn jaccard_estimate_tracks_true_overlap() {
        // A: 0..300, B: 150..450 → |A∩B| = 150, |A∪B| = 450, J = 1/3.
        let a: Vec<ChunkHash> = (0..300u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let b: Vec<ChunkHash> = (150..450u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let sa = MinHashSignature::from_hashes(a, 512);
        let sb = MinHashSignature::from_hashes(b, 512);
        let j = sa.jaccard(&sb);
        assert!((j - 1.0 / 3.0).abs() < 0.08, "estimated {j}");
        let union = sa.union_estimate(&sb);
        assert!((union - 450.0).abs() < 50.0, "union estimate {union}");
    }

    #[test]
    fn lsh_finds_the_similar_pair() {
        // Sources 0 and 1 heavily overlap; 2 is unrelated.
        let a: Vec<ChunkHash> = (0..400u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let b: Vec<ChunkHash> = (20..420u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let c: Vec<ChunkHash> = (9000..9400u32)
            .map(|i| ChunkHash::of(&i.to_be_bytes()))
            .collect();
        let sigs: Vec<MinHashSignature> = [a, b, c]
            .into_iter()
            .map(|h| MinHashSignature::from_hashes(h, 128))
            .collect();
        let pairs = lsh_candidate_pairs(&sigs, 32, 4);
        assert!(
            pairs.contains(&(0, 1)),
            "missed the similar pair: {pairs:?}"
        );
        assert!(!pairs.contains(&(0, 2)), "false positive: {pairs:?}");
        assert!(!pairs.contains(&(1, 2)), "false positive: {pairs:?}");
    }

    #[test]
    fn minhash_ground_truth_close_to_exact() {
        // Compare the MinHash-estimated ground truth against exact joint
        // measurement on real dataset bytes.
        let ds = datasets::accelerometer(3, 31);
        let chunk = ds.model().chunk_size();
        let files: Vec<Vec<u8>> = (0..3).map(|s| ds.file(s, 0, 0, 300)).collect();
        let streams: Vec<Vec<ChunkHash>> = files.iter().map(|f| hashes_of(f, chunk)).collect();

        let approx = minhash_ground_truth(&streams, 256);
        let exact =
            crate::estimator::GroundTruth::measure(&FixedChunker::new(chunk).unwrap(), &files);

        // Compare on the shared subsets (singletons + pairs).
        for (subset, &a) in approx.subsets.iter().zip(&approx.measured) {
            let e = exact
                .subsets
                .iter()
                .position(|s| s == subset)
                .map(|i| exact.measured[i])
                .expect("subset measured exactly");
            let rel = ((a - e) / e).abs();
            assert!(
                rel < 0.05,
                "subset {subset:?}: minhash {a} vs exact {e} (rel {rel})"
            );
        }
    }

    #[test]
    fn minhash_ground_truth_feeds_the_estimator() {
        // The estimator reaches its error bound on MinHash-estimated
        // ground truth too — the whole future-work pipeline works.
        let ds = datasets::accelerometer(2, 77);
        let chunk = ds.model().chunk_size();
        let files: Vec<Vec<u8>> = (0..2).map(|s| ds.file(s, 0, 0, 400)).collect();
        let streams: Vec<Vec<ChunkHash>> = files.iter().map(|f| hashes_of(f, chunk)).collect();
        let truth = minhash_ground_truth(&streams, 256);
        let fitted = crate::estimator::Estimator::default().fit(&truth);
        assert!(
            fitted.mean_rel_error < 0.05,
            "fit error {} on minhash truth",
            fitted.mean_rel_error
        );
    }

    #[test]
    #[should_panic(expected = "banding exceeds signature length")]
    fn banding_validation() {
        let s = MinHashSignature::from_hashes(std::iter::once(ChunkHash::of(b"x")), 8);
        s.band_keys(4, 4);
    }

    #[test]
    #[should_panic(expected = "empty source")]
    fn empty_source_rejected() {
        MinHashSignature::from_hashes(std::iter::empty(), 8);
    }
}
