//! Parameterized experiment runners reproducing every figure of the
//! paper's evaluation (Sec. V). Each function returns typed rows; the
//! `ef-bench` binaries print them in the paper's format and
//! `EXPERIMENTS.md` records paper-vs-measured values.

use crate::estimator::{Estimator, EstimatorConfig, FittedModel, GroundTruth};
use crate::model::Snod2Instance;
use crate::partition::{DedupOnly, NetworkOnly, Partition, Partitioner, SmartGreedy};
use crate::system::{run_system, Strategy, SystemConfig, SystemMetrics, Workload};
use ef_chunking::ChunkerKind;
use ef_datagen::datasets::Dataset;
use ef_datagen::{datasets, CharacteristicVector, GenerativeModel, SourceSpec};
use ef_netsim::{Network, NetworkConfig, TopologyBuilder};
use ef_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// Which of the paper's two IoT datasets an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Dataset 1: accelerometer traces.
    Accelerometer,
    /// Dataset 2: traffic-video frames.
    TrafficVideo,
}

impl DatasetKind {
    /// Instantiates the dataset with `n` sources.
    pub fn build(self, n: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Accelerometer => datasets::accelerometer(n, seed),
            DatasetKind::TrafficVideo => datasets::traffic_video(n, seed),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Accelerometer => "accelerometer",
            DatasetKind::TrafficVideo => "traffic-video",
        }
    }
}

/// The paper's 20-node testbed: 10 edge clouds of 2 VMs plus a 4-VM
/// central cloud, at the given network profile.
pub fn testbed(nodes: usize, config: NetworkConfig) -> Network {
    let sites = nodes.div_ceil(2);
    let mut b = TopologyBuilder::new();
    for i in 0..sites {
        let in_site = if i + 1 == sites && nodes % 2 == 1 {
            1
        } else {
            2
        };
        b = b.edge_site(in_site);
    }
    Network::new(b.cloud_site(4).build(), config)
}

/// Builds the SNOD2 instance matching a dataset + network, with workload
/// node `i` on edge node `i`.
///
/// # Panics
///
/// Panics when the network has fewer edge nodes than the dataset sources.
pub fn instance_for(
    dataset: &Dataset,
    network: &Network,
    alpha: f64,
    gamma: usize,
    horizon: f64,
) -> Snod2Instance {
    let edge = network.topology().edge_nodes();
    let n = dataset.model().source_count();
    assert!(edge.len() >= n, "not enough edge nodes");
    let costs = network.cost_matrix(&edge[..n]);
    Snod2Instance::from_parts(dataset.model(), costs, alpha, gamma, horizon)
        // simlint::allow(D003): inputs derive from a validated dataset model
        .expect("dataset-derived instance is valid")
}

// ---------------------------------------------------------------------------
// Fig. 2 / Fig. 3 — estimation model validation
// ---------------------------------------------------------------------------

/// One (real, estimated) dedup-ratio pair of the Fig. 2 validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimationRow {
    /// Probe subset (source indices).
    pub subset: Vec<usize>,
    /// Measured dedup ratio (ground truth).
    pub real: f64,
    /// Model-predicted dedup ratio after fitting.
    pub estimated: f64,
}

/// Result of one estimation time slot (Figs. 2 and 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimationSlot {
    /// The time slot index.
    pub slot: u32,
    /// Per-subset real-vs-estimated rows.
    pub rows: Vec<EstimationRow>,
    /// MSE over the rows.
    pub mse: f64,
    /// Mean relative error (the paper's < 4 % metric).
    pub mean_rel_error: f64,
    /// Descent iterations used (warm starts use fewer).
    pub iterations: usize,
}

/// Runs the Fig. 2/3 validation: sample two sources from the dataset at
/// successive time slots, fit Algorithm 1 (cold at slot 0, warm after),
/// and report real vs estimated ratios.
pub fn estimation_experiment(
    kind: DatasetKind,
    slots: u32,
    chunks_per_sample: usize,
    seed: u64,
) -> Vec<EstimationSlot> {
    let dataset = kind.build(2, seed);
    // simlint::allow(D003): the dataset model's chunk size is validated at model construction
    let chunker = ChunkerKind::fixed(dataset.model().chunk_size()).expect("valid chunk size");
    estimation_slots(&dataset, &chunker, slots, chunks_per_sample)
}

/// [`estimation_experiment`] with the caller's choice of chunking
/// engine: the probe samples are cut by `chunker` (fixed or gear-CDC)
/// and Algorithm 1 fits whatever ratios that engine measures.
pub fn estimation_experiment_with(
    kind: DatasetKind,
    chunker: &ChunkerKind,
    slots: u32,
    chunks_per_sample: usize,
    seed: u64,
) -> Vec<EstimationSlot> {
    let dataset = kind.build(2, seed);
    estimation_slots(&dataset, chunker, slots, chunks_per_sample)
}

fn estimation_slots(
    dataset: &Dataset,
    chunker: &ChunkerKind,
    slots: u32,
    chunks_per_sample: usize,
) -> Vec<EstimationSlot> {
    assert!(slots > 0, "need at least one slot");
    let estimator = Estimator::new(EstimatorConfig::default());

    let mut out = Vec::new();
    let mut previous: Option<FittedModel> = None;
    for slot in 0..slots {
        let files: Vec<Vec<u8>> = (0..2)
            .map(|s| dataset.file(s, slot, 0, chunks_per_sample))
            .collect();
        let truth = GroundTruth::measure(chunker, &files);
        let fitted = match &previous {
            None => estimator.fit(&truth),
            Some(prev) => estimator.fit_warm(&truth, prev),
        };
        let rows = truth
            .subsets
            .iter()
            .zip(&truth.measured)
            .map(|(subset, &real)| EstimationRow {
                subset: subset.clone(),
                real,
                estimated: crate::estimator::predict_ratio(
                    subset,
                    &fitted.pool_sizes,
                    &fitted.probs,
                    &truth.sample_chunks,
                ),
            })
            .collect();
        out.push(EstimationSlot {
            slot,
            rows,
            mse: fitted.mse,
            mean_rel_error: fitted.mean_rel_error,
            iterations: fitted.iterations,
        });
        previous = Some(fitted);
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 5 — throughput and dedup ratio vs cloud baselines
// ---------------------------------------------------------------------------

/// One strategy's result at one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyPoint {
    /// Sweep coordinate (node count, latency ms, ring count, …).
    pub x: f64,
    /// Strategy label.
    pub strategy: String,
    /// Aggregate dedup throughput (MB/s).
    pub throughput_mbps: f64,
    /// Measured dedup ratio.
    pub dedup_ratio: f64,
    /// Full metrics for deeper analysis.
    pub metrics: SystemMetrics,
}

/// Shared experiment parameters for the system sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Chunks each node ingests.
    pub chunks_per_node: usize,
    /// D2-rings SMART builds (Fig. 5(a) uses 5).
    pub rings: usize,
    /// Trade-off factor for the SMART instance.
    pub alpha: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    /// The paper's settings, with α translated to this reproduction's
    /// cost units: the paper uses α = 0.1 with bandwidth-based `v_ij`;
    /// our `v_ij` are RTT milliseconds, and the equivalently *balanced*
    /// trade-off sits near 0.02 (see EXPERIMENTS.md).
    fn default() -> Self {
        SweepConfig {
            chunks_per_node: 2_000,
            rings: 5,
            alpha: 0.02,
            seed: 42,
        }
    }
}

fn smart_partition_for(
    dataset: &Dataset,
    network: &Network,
    rings: usize,
    alpha: f64,
) -> Partition {
    let inst = instance_for(dataset, network, alpha, 2, 10.0);
    SmartGreedy.partition(&inst, rings)
}

/// Fig. 5(a): dedup throughput vs number of edge nodes, all three
/// strategies, for one dataset.
pub fn throughput_vs_nodes(
    kind: DatasetKind,
    node_counts: &[usize],
    sweep: &SweepConfig,
) -> Vec<StrategyPoint> {
    let cfg = SystemConfig::paper_testbed();
    let mut out = Vec::new();
    for &n in node_counts {
        let network = testbed(n, NetworkConfig::paper_testbed());
        let dataset = kind.build(n, sweep.seed);
        let workload = Workload::from_dataset(&dataset, n, sweep.chunks_per_node, 0);
        let partition = smart_partition_for(&dataset, &network, sweep.rings, sweep.alpha);
        for strategy in [
            Strategy::Smart(partition.clone()),
            Strategy::CloudAssisted,
            Strategy::CloudOnly,
        ] {
            let metrics = run_system(&network, &workload, &strategy, &cfg);
            out.push(StrategyPoint {
                x: n as f64,
                strategy: metrics.strategy.clone(),
                throughput_mbps: metrics.aggregate_throughput_mbps,
                dedup_ratio: metrics.dedup_ratio,
                metrics,
            });
        }
    }
    out
}

/// Fig. 5(b): dedup throughput vs edge↔cloud latency (ms one-way).
pub fn throughput_vs_wan_latency(
    kind: DatasetKind,
    latencies_ms: &[f64],
    nodes: usize,
    sweep: &SweepConfig,
) -> Vec<StrategyPoint> {
    let cfg = SystemConfig::paper_testbed();
    let mut out = Vec::new();
    for &lat in latencies_ms {
        let network = testbed(
            nodes,
            NetworkConfig::paper_testbed().with_wan_latency_ms(lat),
        );
        let dataset = kind.build(nodes, sweep.seed);
        let workload = Workload::from_dataset(&dataset, nodes, sweep.chunks_per_node, 0);
        let partition = smart_partition_for(&dataset, &network, sweep.rings, sweep.alpha);
        for strategy in [
            Strategy::Smart(partition.clone()),
            Strategy::CloudAssisted,
            Strategy::CloudOnly,
        ] {
            let metrics = run_system(&network, &workload, &strategy, &cfg);
            out.push(StrategyPoint {
                x: lat,
                strategy: metrics.strategy.clone(),
                throughput_mbps: metrics.aggregate_throughput_mbps,
                dedup_ratio: metrics.dedup_ratio,
                metrics,
            });
        }
    }
    out
}

/// Fig. 5(c): dedup ratio vs number of D2-rings (plus the cloud bound).
pub fn ratio_vs_rings(
    kind: DatasetKind,
    ring_counts: &[usize],
    nodes: usize,
    sweep: &SweepConfig,
) -> Vec<StrategyPoint> {
    let cfg = SystemConfig::paper_testbed();
    let network = testbed(nodes, NetworkConfig::paper_testbed());
    let dataset = kind.build(nodes, sweep.seed);
    let workload = Workload::from_dataset(&dataset, nodes, sweep.chunks_per_node, 0);
    let mut out = Vec::new();
    for &rings in ring_counts {
        let partition = smart_partition_for(&dataset, &network, rings, sweep.alpha);
        let metrics = run_system(&network, &workload, &Strategy::Smart(partition), &cfg);
        out.push(StrategyPoint {
            x: rings as f64,
            strategy: metrics.strategy.clone(),
            throughput_mbps: metrics.aggregate_throughput_mbps,
            dedup_ratio: metrics.dedup_ratio,
            metrics,
        });
    }
    // The cloud strategies' (global) dedup ratio as the upper bound.
    let metrics = run_system(&network, &workload, &Strategy::CloudAssisted, &cfg);
    out.push(StrategyPoint {
        x: 1.0,
        strategy: "Cloud (global)".to_string(),
        throughput_mbps: metrics.aggregate_throughput_mbps,
        dedup_ratio: metrics.dedup_ratio,
        metrics,
    });
    out
}

// ---------------------------------------------------------------------------
// Fig. 6 — network/storage trade-off on the testbed
// ---------------------------------------------------------------------------

/// One Fig. 6(a)/(b) sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Number of rings (6a) or ring-size sweep coordinate (6b).
    pub rings: usize,
    /// Inter-edge-cloud latency (ms).
    pub inter_edge_ms: f64,
    /// Measured storage cost (bytes of unique chunks).
    pub storage_bytes: u64,
    /// Measured network cost (Σ lookup RTT ms).
    pub network_cost_ms: f64,
    /// Aggregate throughput (MB/s).
    pub throughput_mbps: f64,
    /// Dedup ratio.
    pub dedup_ratio: f64,
}

/// Fig. 6(a)/(b): sweep ring count and inter-edge-cloud latency on the
/// grouped 20-node testbed.
pub fn tradeoff_sweep(
    kind: DatasetKind,
    ring_counts: &[usize],
    inter_edge_ms: &[f64],
    sweep: &SweepConfig,
) -> Vec<TradeoffPoint> {
    let nodes = 20;
    let cfg = SystemConfig::paper_testbed();
    let mut out = Vec::new();
    for &lat in inter_edge_ms {
        let network = testbed(
            nodes,
            NetworkConfig::paper_testbed().with_inter_edge_latency_ms(lat),
        );
        let dataset = kind.build(nodes, sweep.seed);
        let workload = Workload::from_dataset(&dataset, nodes, sweep.chunks_per_node, 0);
        for &rings in ring_counts {
            let partition = smart_partition_for(&dataset, &network, rings, sweep.alpha);
            let m = run_system(&network, &workload, &Strategy::Smart(partition), &cfg);
            out.push(TradeoffPoint {
                rings,
                inter_edge_ms: lat,
                storage_bytes: m.storage_bytes,
                network_cost_ms: m.network_cost_ms,
                throughput_mbps: m.aggregate_throughput_mbps,
                dedup_ratio: m.dedup_ratio,
            });
        }
    }
    out
}

/// One Fig. 6(c)/Fig. 7 cost-comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRow {
    /// Algorithm label.
    pub algorithm: String,
    /// Sweep coordinate (node count or alpha).
    pub x: f64,
    /// Model storage cost Σ U(P_s) (expected unique chunks).
    pub storage: f64,
    /// Model network cost Σ V(P_s).
    pub network: f64,
    /// Aggregate cost (Eq. 3).
    pub aggregate: f64,
}

/// Fig. 6(c): aggregate cost of SMART vs the Network-Only and Dedup-Only
/// ablations on the 20-node testbed instance.
pub fn cost_comparison(kind: DatasetKind, alpha: f64, rings: usize, seed: u64) -> Vec<CostRow> {
    let nodes = 20;
    let network = testbed(nodes, NetworkConfig::paper_testbed());
    let dataset = kind.build(nodes, seed);
    let inst = instance_for(&dataset, &network, alpha, 2, 10.0);
    let algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(SmartGreedy),
        Box::new(NetworkOnly),
        Box::new(DedupOnly),
    ];
    algos
        .iter()
        .map(|algo| {
            let p = algo.partition(&inst, rings);
            let c = inst.total_cost(&p);
            CostRow {
                algorithm: algo.name().to_string(),
                x: alpha,
                storage: c.storage,
                network: c.network,
                aggregate: c.aggregate,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 7 — large-scale simulations
// ---------------------------------------------------------------------------

/// Builds a large-scale simulation instance: `n` nodes whose inter-node
/// latencies are drawn uniformly from `0..max_latency_ms` (the paper's
/// Fig. 7 setup), with a compact pool structure so 500-node instances
/// stay tractable.
pub fn scale_instance(
    kind: DatasetKind,
    n: usize,
    max_latency_ms: f64,
    alpha: f64,
    groups: usize,
    seed: u64,
) -> Snod2Instance {
    assert!(n > 0 && groups > 0, "need nodes and groups");
    // Compact model: one global pool, `groups` group pools, one noise
    // pool; group shares mirror the dataset character.
    let (p_global, p_group, p_noise, group_pool) = match kind {
        DatasetKind::Accelerometer => (0.30, 0.55, 0.15, 800),
        DatasetKind::TrafficVideo => (0.35, 0.55, 0.10, 150),
    };
    let mut pool_sizes = vec![1_500u64];
    pool_sizes.extend(std::iter::repeat_n(group_pool, groups));
    pool_sizes.push(400_000);
    let k = pool_sizes.len();
    let sources: Vec<SourceSpec> = (0..n)
        .map(|i| {
            let g = i % groups;
            let mut p = vec![0.0; k];
            p[0] = p_global;
            p[1 + g] = p_group;
            p[k - 1] = p_noise;
            SourceSpec::new(
                512.0,
                // simlint::allow(D003): probabilities are built to sum to one a few lines up
                CharacteristicVector::new(p).expect("probs sum to one"),
            )
        })
        .collect();
    // simlint::allow(D003): constant experiment parameters satisfy the model invariants
    let model = GenerativeModel::new(pool_sizes, 4096, sources).expect("scale model is valid");

    let mut rng = DetRng::new(seed).substream("scale-latency");
    let mut costs = vec![vec![0.0; n]; n];
    // Symmetric fill: both (i, j) and (j, i) are written per draw, which
    // iterator forms cannot express without a second pass.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            let rtt = rng.range_f64(0.0, max_latency_ms) * 2.0;
            costs[i][j] = rtt;
            costs[j][i] = rtt;
        }
    }
    // simlint::allow(D003): constant experiment parameters satisfy the instance invariants
    Snod2Instance::from_parts(&model, costs, alpha, 2, 10.0).expect("scale instance is valid")
}

/// Fig. 7(a): aggregate/network/storage cost vs node count for SMART and
/// the ablations.
pub fn scale_sweep(
    kind: DatasetKind,
    node_counts: &[usize],
    alpha: f64,
    rings: usize,
    seed: u64,
) -> Vec<CostRow> {
    let mut out = Vec::new();
    for &n in node_counts {
        let inst = scale_instance(kind, n, 100.0, alpha, 20, seed);
        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(SmartGreedy),
            Box::new(NetworkOnly),
            Box::new(DedupOnly),
        ];
        for algo in &algos {
            let p = algo.partition(&inst, rings);
            let c = inst.total_cost(&p);
            out.push(CostRow {
                algorithm: algo.name().to_string(),
                x: n as f64,
                storage: c.storage,
                network: c.network,
                aggregate: c.aggregate,
            });
        }
    }
    out
}

/// Fig. 7(b): cost vs the trade-off factor α.
pub fn alpha_sweep(
    kind: DatasetKind,
    alphas: &[f64],
    nodes: usize,
    rings: usize,
    seed: u64,
) -> Vec<CostRow> {
    let base = scale_instance(kind, nodes, 100.0, 1.0, 20, seed);
    let mut out = Vec::new();
    for &alpha in alphas {
        let inst = base.with_alpha(alpha);
        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(SmartGreedy),
            Box::new(NetworkOnly),
            Box::new(DedupOnly),
        ];
        for algo in &algos {
            let p = algo.partition(&inst, rings);
            let c = inst.total_cost(&p);
            out.push(CostRow {
                algorithm: algo.name().to_string(),
                x: alpha,
                storage: c.storage,
                network: c.network,
                aggregate: c.aggregate,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shapes() {
        let net = testbed(20, NetworkConfig::paper_testbed());
        assert_eq!(net.topology().edge_nodes().len(), 20);
        assert_eq!(net.topology().cloud_nodes().len(), 4);
        assert_eq!(net.topology().edge_sites().len(), 10);
        let odd = testbed(5, NetworkConfig::paper_testbed());
        assert_eq!(odd.topology().edge_nodes().len(), 5);
    }

    #[test]
    fn estimation_experiment_meets_error_bound() {
        let slots = estimation_experiment(DatasetKind::Accelerometer, 2, 400, 7);
        assert_eq!(slots.len(), 2);
        for s in &slots {
            assert!(
                s.mean_rel_error < 0.06,
                "slot {} error {}",
                s.slot,
                s.mean_rel_error
            );
            assert!(!s.rows.is_empty());
        }
    }

    #[test]
    fn estimation_experiment_with_matches_the_default_under_fixed() {
        let ds = DatasetKind::Accelerometer.build(2, 7);
        let chunker = ChunkerKind::fixed(ds.model().chunk_size()).unwrap();
        let explicit = estimation_experiment_with(DatasetKind::Accelerometer, &chunker, 2, 400, 7);
        let default = estimation_experiment(DatasetKind::Accelerometer, 2, 400, 7);
        assert_eq!(format!("{explicit:?}"), format!("{default:?}"));
    }

    #[test]
    fn estimation_experiment_runs_under_gear_cdc() {
        let chunker = ChunkerKind::gear_sized(4096).unwrap();
        let slots = estimation_experiment_with(DatasetKind::Accelerometer, &chunker, 2, 400, 7);
        assert_eq!(slots.len(), 2);
        for s in &slots {
            assert!(!s.rows.is_empty());
            assert!(s.mse.is_finite() && s.mean_rel_error.is_finite());
            for r in &s.rows {
                assert!(r.real >= 1.0 && r.estimated.is_finite(), "{r:?}");
            }
        }
        // Deterministic: same seed, same fit.
        let again = estimation_experiment_with(DatasetKind::Accelerometer, &chunker, 2, 400, 7);
        assert_eq!(format!("{slots:?}"), format!("{again:?}"));
    }

    #[test]
    fn throughput_vs_nodes_orders_strategies() {
        let pts = throughput_vs_nodes(
            DatasetKind::TrafficVideo,
            &[8, 16],
            &SweepConfig {
                chunks_per_node: 300,
                ..SweepConfig::default()
            },
        );
        assert_eq!(pts.len(), 6);
        for n in [8.0, 16.0] {
            let at = |s: &str| {
                pts.iter()
                    .find(|p| p.x == n && p.strategy == s)
                    .unwrap()
                    .throughput_mbps
            };
            assert!(at("SMART") > at("Cloud-Only"), "n={n}");
        }
    }

    #[test]
    fn ratio_vs_rings_monotone_toward_cloud_bound() {
        let pts = ratio_vs_rings(
            DatasetKind::Accelerometer,
            &[1, 5, 10],
            20,
            &SweepConfig {
                chunks_per_node: 200,
                ..SweepConfig::default()
            },
        );
        let ratio = |r: f64| {
            pts.iter()
                .find(|p| p.x == r && p.strategy == "SMART")
                .unwrap()
                .dedup_ratio
        };
        let cloud = pts
            .iter()
            .find(|p| p.strategy == "Cloud (global)")
            .unwrap()
            .dedup_ratio;
        assert!(ratio(1.0) >= ratio(5.0) - 1e-9);
        assert!(ratio(5.0) >= ratio(10.0) - 1e-9);
        assert!(cloud >= ratio(1.0) - 1e-9);
    }

    #[test]
    fn cost_comparison_smart_wins() {
        let rows = cost_comparison(DatasetKind::Accelerometer, 0.1, 5, 42);
        let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap().aggregate;
        assert!(get("SMART") <= get("Network-Only") * 1.0001);
        assert!(get("SMART") <= get("Dedup-Only") * 1.0001);
    }

    #[test]
    fn scale_sweep_small_smoke() {
        let rows = scale_sweep(DatasetKind::TrafficVideo, &[30], 0.001, 5, 1);
        assert_eq!(rows.len(), 3);
        let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap().aggregate;
        assert!(get("SMART") <= get("Network-Only") * 1.0001);
        assert!(get("SMART") <= get("Dedup-Only") * 1.0001);
    }

    #[test]
    fn alpha_sweep_moves_tradeoff() {
        let rows = alpha_sweep(DatasetKind::Accelerometer, &[0.0001, 0.1], 30, 5, 1);
        let smart = |alpha: f64| {
            rows.iter()
                .find(|r| r.algorithm == "SMART" && r.x == alpha)
                .unwrap()
        };
        // As alpha rises, SMART trades toward lower network cost.
        assert!(smart(0.1).network <= smart(0.0001).network + 1e-6);
    }
}
