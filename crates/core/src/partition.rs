//! Partitioning algorithms for SNOD2 (paper Sec. III-C).
//!
//! * [`SmartGreedy`] — Algorithm 2: iteratively place the (node, ring)
//!   pair with the smallest aggregate-cost increment.
//! * [`EqualSizeGreedy`] — the load-balanced variant with equal ring
//!   sizes.
//! * [`MatchingPartitioner`] — the minimum-weight-matching formulation:
//!   repeatedly merge the cheapest partition pairs, keeping the best
//!   θ-fraction of merges per round.
//! * Baselines: [`NetworkOnly`], [`DedupOnly`] (the Fig. 6(c)/7 ablations
//!   that drop one term of the objective), [`RandomPartitioner`],
//!   [`SingleRing`], [`PerSite`].
//! * [`exhaustive_optimal`] — brute force over all partitions for small
//!   `N`, used to measure the heuristics' approximation quality.

use crate::model::Snod2Instance;
use ef_simcore::DetRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by [`Partition::validate`] / [`Partition::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A node index appears in more than one ring.
    Duplicate(usize),
    /// A node index is missing from every ring.
    Missing(usize),
    /// A node index exceeds the instance size.
    OutOfRange(usize),
    /// A ring is empty.
    EmptyRing,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Duplicate(i) => write!(f, "node {i} appears in multiple rings"),
            PartitionError::Missing(i) => write!(f, "node {i} is not in any ring"),
            PartitionError::OutOfRange(i) => write!(f, "node {i} out of range"),
            PartitionError::EmptyRing => write!(f, "partition contains an empty ring"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A disjoint partition of node indices into D2-rings.
///
/// Rings are kept sorted internally (both within a ring and by first
/// element across rings) so structurally equal partitions compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    rings: Vec<Vec<usize>>,
}

impl Partition {
    /// Creates a partition, normalizing ring order.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::EmptyRing`] when a ring is empty or
    /// [`PartitionError::Duplicate`] when a node repeats. (Coverage
    /// against an instance is checked by [`Partition::validate`].)
    pub fn new(mut rings: Vec<Vec<usize>>) -> Result<Self, PartitionError> {
        let mut seen = std::collections::BTreeSet::new();
        for ring in &mut rings {
            if ring.is_empty() {
                return Err(PartitionError::EmptyRing);
            }
            ring.sort_unstable();
            for &i in ring.iter() {
                if !seen.insert(i) {
                    return Err(PartitionError::Duplicate(i));
                }
            }
        }
        rings.sort_by_key(|r| r[0]);
        Ok(Partition { rings })
    }

    /// The rings.
    pub fn rings(&self) -> &[Vec<usize>] {
        &self.rings
    }

    /// Number of rings `M`.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Total node count across rings.
    pub fn node_count(&self) -> usize {
        self.rings.iter().map(Vec::len).sum()
    }

    /// The ring index containing `node`, if any.
    pub fn ring_of(&self, node: usize) -> Option<usize> {
        self.rings
            .iter()
            .position(|r| r.binary_search(&node).is_ok())
    }

    /// Checks the partition is a disjoint cover of `0..n`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, n: usize) -> Result<(), PartitionError> {
        let mut seen = vec![false; n];
        for ring in &self.rings {
            for &i in ring {
                if i >= n {
                    return Err(PartitionError::OutOfRange(i));
                }
                if seen[i] {
                    return Err(PartitionError::Duplicate(i));
                }
                seen[i] = true;
            }
        }
        if let Some(i) = seen.iter().position(|s| !s) {
            return Err(PartitionError::Missing(i));
        }
        Ok(())
    }
}

/// A partitioning algorithm for SNOD2 instances.
pub trait Partitioner {
    /// Partitions the instance's nodes into `min(m, N)` non-empty rings.
    ///
    /// The paper fixes the ring count (its experiments run "SMART with 5
    /// D2-rings" / "20 unbalanced D2 rings"), so implementations return
    /// exactly `min(m, N)` rings — except structural baselines like
    /// [`SingleRing`]/[`PerSite`], whose ring count is inherent.
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition;

    /// A short human-readable name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Which cost terms a greedy placement considers — SMART uses both; the
/// paper's Network-Only and Dedup-Only ablations drop one each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Objective {
    Both,
    NetworkOnly,
    StorageOnly,
}

/// Precomputed `g_ik` matrix plus rates, shared by the incremental ring
/// accumulators — evaluating a placement drops from `O(K·|ring|)` to
/// `O(K + |ring|)`, which is what makes the Fig. 7 500-node sweeps
/// tractable.
struct Precomputed {
    /// `g[i][k]` per node and pool.
    g: Vec<Vec<f64>>,
    /// `R_i T` per node.
    lookups: Vec<f64>,
}

impl Precomputed {
    fn new(inst: &Snod2Instance) -> Self {
        let n = inst.node_count();
        let k = inst.pool_count();
        Precomputed {
            g: (0..n)
                .map(|i| (0..k).map(|kk| inst.g(i, kk)).collect())
                .collect(),
            lookups: (0..n).map(|i| inst.rates()[i] * inst.horizon()).collect(),
        }
    }
}

/// Incremental state of one ring under construction.
#[derive(Clone)]
struct RingState {
    members: Vec<usize>,
    /// Per pool: `Π_{i∈ring} g_ik`.
    survive: Vec<f64>,
    /// `Σ_{i∈ring} R_i T · Σ_{j∈ring, j≠i} v_ij`.
    w_pair: f64,
}

impl RingState {
    fn new(pool_count: usize) -> Self {
        RingState {
            members: Vec::new(),
            survive: vec![1.0; pool_count],
            w_pair: 0.0,
        }
    }

    fn from_members(inst: &Snod2Instance, pre: &Precomputed, members: &[usize]) -> Self {
        let mut s = RingState::new(inst.pool_count());
        for &v in members {
            s.add(inst, pre, v);
        }
        s
    }

    fn storage(&self, inst: &Snod2Instance) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        inst.pool_sizes()
            .iter()
            .zip(&self.survive)
            .map(|(&s, &surv)| s as f64 * (1.0 - surv))
            .sum()
    }

    fn network(&self, inst: &Snod2Instance) -> f64 {
        let p = self.members.len();
        if p <= 1 {
            return 0.0;
        }
        let nonlocal = (1.0 - inst.gamma() as f64 / p as f64).max(0.0);
        if nonlocal == 0.0 {
            return 0.0;
        }
        self.w_pair * nonlocal / (p as f64 - 1.0)
    }

    fn cost(&self, inst: &Snod2Instance, obj: Objective) -> f64 {
        match obj {
            Objective::Both => self.storage(inst) + inst.alpha() * self.network(inst),
            Objective::NetworkOnly => inst.alpha() * self.network(inst),
            Objective::StorageOnly => self.storage(inst),
        }
    }

    /// Cost of this ring if `v` were added, in `O(K + |ring|)`.
    fn cost_with(&self, inst: &Snod2Instance, pre: &Precomputed, v: usize, obj: Objective) -> f64 {
        let p = self.members.len() + 1;
        let storage = || -> f64 {
            inst.pool_sizes()
                .iter()
                .zip(&self.survive)
                .enumerate()
                .map(|(k, (&s, &surv))| s as f64 * (1.0 - surv * pre.g[v][k]))
                .sum()
        };
        let network = || -> f64 {
            if p <= 1 {
                return 0.0;
            }
            let nonlocal = (1.0 - inst.gamma() as f64 / p as f64).max(0.0);
            if nonlocal == 0.0 {
                return 0.0;
            }
            let mut w = self.w_pair;
            for &j in &self.members {
                w += pre.lookups[v] * inst.cost(v, j) + pre.lookups[j] * inst.cost(j, v);
            }
            w * nonlocal / (p as f64 - 1.0)
        };
        match obj {
            Objective::Both => storage() + inst.alpha() * network(),
            Objective::NetworkOnly => inst.alpha() * network(),
            Objective::StorageOnly => storage(),
        }
    }

    fn add(&mut self, inst: &Snod2Instance, pre: &Precomputed, v: usize) {
        for (k, surv) in self.survive.iter_mut().enumerate() {
            *surv *= pre.g[v][k];
        }
        for &j in &self.members {
            self.w_pair += pre.lookups[v] * inst.cost(v, j) + pre.lookups[j] * inst.cost(j, v);
        }
        self.members.push(v);
    }
}

/// The merge penalty of two singleton nodes: how much joining them costs
/// versus keeping them apart. Used for farthest-point seeding.
fn merge_penalty(
    inst: &Snod2Instance,
    pre: &Precomputed,
    u: usize,
    v: usize,
    obj: Objective,
) -> f64 {
    let su = RingState::from_members(inst, pre, &[u]);
    let pair = su.cost_with(inst, pre, v, obj);
    let alone = su.cost(inst, obj) + RingState::from_members(inst, pre, &[v]).cost(inst, obj);
    pair - alone
}

/// Shared greedy core of Algorithm 2, hardened against the classic
/// greedy myopia (never opening a second ring when storage dominates):
///
/// 1. **Seed** the `m` rings with mutually expensive-to-merge nodes
///    (farthest-point on the pairwise merge penalty),
/// 2. **Greedy-fill**: repeatedly place the (remaining node, ring) pair
///    with the minimum cost increment — Algorithm 2's selection rule,
/// 3. **Local search**: move nodes between rings while the total cost
///    decreases (bounded passes), never emptying a ring — the ring count
///    stays exactly `min(m, N)`.
fn greedy(inst: &Snod2Instance, m: usize, obj: Objective, cap: Option<usize>) -> Partition {
    let pre = Precomputed::new(inst);
    greedy_with(inst, &pre, m, obj, obj, cap)
}

fn greedy_with(
    inst: &Snod2Instance,
    pre: &Precomputed,
    m: usize,
    seed_obj: Objective,
    obj: Objective,
    max_ring: Option<usize>,
) -> Partition {
    let n = inst.node_count();
    assert!(m > 0, "need at least one ring");
    let m = m.min(n);

    // --- 1. Seeding -------------------------------------------------------
    let mut seeds: Vec<usize> = vec![0];
    while seeds.len() < m {
        // The unpicked node with the largest minimum merge penalty to any
        // existing seed.
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if seeds.contains(&v) {
                continue;
            }
            let min_pen = seeds
                .iter()
                .map(|&s| merge_penalty(inst, pre, s, v, seed_obj))
                .fold(f64::INFINITY, f64::min);
            match best {
                Some((b, _)) if b >= min_pen => {}
                _ => best = Some((min_pen, v)),
            }
        }
        // simlint::allow(D003): the loop range guarantees fewer seeds than nodes
        seeds.push(best.expect("unpicked node exists").1);
    }
    let mut rings: Vec<RingState> = seeds
        .iter()
        .map(|&s| RingState::from_members(inst, pre, &[s]))
        .collect();
    let mut ring_costs: Vec<f64> = rings.iter().map(|r| r.cost(inst, obj)).collect();

    // --- 2. Greedy fill (Algorithm 2's min-increment selection) -----------
    let mut remaining: Vec<usize> = (0..n).filter(|v| !seeds.contains(v)).collect();
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, usize, f64)> = None; // (delta, pos, ring, new_cost)
        for (pos, &v) in remaining.iter().enumerate() {
            for (s, ring) in rings.iter().enumerate() {
                if let Some(cap) = max_ring {
                    if ring.members.len() >= cap {
                        continue;
                    }
                }
                let new_cost = ring.cost_with(inst, pre, v, obj);
                let delta = new_cost - ring_costs[s];
                match best {
                    Some((d, ..)) if d <= delta => {}
                    _ => best = Some((delta, pos, s, new_cost)),
                }
            }
        }
        // simlint::allow(D003): every remaining node can join some ring below the cap
        let (_, pos, s, new_cost) = best.expect("a feasible placement always exists");
        let v = remaining.swap_remove(pos);
        rings[s].add(inst, pre, v);
        ring_costs[s] = new_cost;
    }

    let rings = refine(inst, pre, rings, obj, max_ring);
    Partition::new(rings.into_iter().map(|r| r.members).collect())
        // simlint::allow(D003): greedy places every node into exactly one ring
        .expect("greedy builds a valid partition")
}

/// Improvement phase shared by the greedy and the portfolio polish:
/// bounded local-search passes of single-node moves. Moves never empty a
/// ring, so the ring count is preserved.
fn refine(
    inst: &Snod2Instance,
    pre: &Precomputed,
    mut rings: Vec<RingState>,
    obj: Objective,
    max_ring: Option<usize>,
) -> Vec<RingState> {
    let n: usize = rings.iter().map(|r| r.members.len()).sum();
    let mut ring_costs: Vec<f64> = rings.iter().map(|r| r.cost(inst, obj)).collect();

    // --- 3. Local search: single-node moves --------------------------------
    for _pass in 0..3 {
        let mut improved = false;
        for v in 0..n {
            let from = rings
                .iter()
                .position(|r| r.members.contains(&v))
                // simlint::allow(D003): refine only moves nodes between rings, never drops one
                .expect("every node placed");
            if rings[from].members.len() == 1 {
                continue; // moving would empty the ring
            }
            let without: Vec<usize> = rings[from]
                .members
                .iter()
                .copied()
                .filter(|&x| x != v)
                .collect();
            let from_without = RingState::from_members(inst, pre, &without);
            let gain_leave = ring_costs[from] - from_without.cost(inst, obj);
            let mut best_move: Option<(f64, usize, f64)> = None; // (net gain, to, to_new_cost)
            for (to, ring) in rings.iter().enumerate() {
                if to == from {
                    continue;
                }
                if let Some(cap) = max_ring {
                    if ring.members.len() >= cap {
                        continue;
                    }
                }
                let to_new = ring.cost_with(inst, pre, v, obj);
                let gain = gain_leave - (to_new - ring_costs[to]);
                match best_move {
                    Some((g, ..)) if g >= gain => {}
                    _ => best_move = Some((gain, to, to_new)),
                }
            }
            if let Some((gain, to, to_new)) = best_move {
                if gain > 1e-12 {
                    rings[from] = from_without.clone();
                    ring_costs[from] = from_without.cost(inst, obj);
                    rings[to].add(inst, pre, v);
                    ring_costs[to] = to_new;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    rings
}

/// **Algorithm 2 (SMART)**: unconstrained greedy minimum-increment
/// placement, run as a small portfolio.
///
/// Pure greedy placement under the mixed objective is myopic: when one
/// cost term dominates locally it can commit to partitions the other
/// term makes globally expensive. SMART therefore builds candidate
/// partitions with several seeding/filling emphases (mixed, storage-led,
/// network-led), polishes each under the **full** Eq. (3) objective with
/// local-search moves, and returns the cheapest. This keeps the paper's
/// property that SMART never loses to the Network-Only or Dedup-Only
/// ablations at the same ring count.
///
/// # Example
///
/// ```
/// use efdedup::partition::{Partitioner, SmartGreedy};
/// # use efdedup::model::Snod2Instance;
/// # use ef_datagen::CharacteristicVector;
/// # let v = CharacteristicVector::uniform(2);
/// # let inst = Snod2Instance::new(vec![100, 100], vec![10.0; 4],
/// #     vec![v.clone(), v.clone(), v.clone(), v],
/// #     vec![vec![0.0; 4]; 4], 0.1, 2, 1.0).unwrap();
/// let partition = SmartGreedy::default().partition(&inst, 2);
/// assert!(partition.ring_count() <= 2);
/// assert_eq!(partition.node_count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SmartGreedy;

impl Partitioner for SmartGreedy {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        let pre = Precomputed::new(inst);
        let candidates = [
            greedy_with(inst, &pre, m, Objective::Both, Objective::Both, None),
            // Storage-led: seeds spread across similarity groups, fill
            // still under the mixed objective.
            greedy_with(inst, &pre, m, Objective::StorageOnly, Objective::Both, None),
            // The two single-term extremes, polished under the full
            // objective below.
            greedy_with(
                inst,
                &pre,
                m,
                Objective::StorageOnly,
                Objective::StorageOnly,
                None,
            ),
            greedy_with(
                inst,
                &pre,
                m,
                Objective::NetworkOnly,
                Objective::NetworkOnly,
                None,
            ),
            // The bottom-up matching construction explores merge orders
            // the top-down greedy cannot reach.
            MatchingPartitioner::default().partition(inst, m),
        ];
        candidates
            .into_iter()
            .map(|p| {
                let rings = p
                    .rings()
                    .iter()
                    .map(|r| RingState::from_members(inst, &pre, r))
                    .collect();
                let polished = refine(inst, &pre, rings, Objective::Both, None);
                Partition::new(polished.into_iter().map(|r| r.members).collect())
                    // simlint::allow(D003): refine only moves nodes between rings, never drops one
                    .expect("refine preserves validity")
            })
            .min_by(|a, b| {
                inst.total_cost(a)
                    .aggregate
                    .partial_cmp(&inst.total_cost(b).aggregate)
                    // simlint::allow(D003): instance costs are finite by model validation
                    .expect("finite costs")
            })
            // simlint::allow(D003): the candidate list always holds the unpolished baseline
            .expect("non-empty candidate set")
    }

    fn name(&self) -> &'static str {
        "SMART"
    }
}

/// The equal-size variant of Algorithm 2 (better load balancing): ring
/// sizes are capped at `⌈N/M⌉`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualSizeGreedy;

impl Partitioner for EqualSizeGreedy {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        let n = inst.node_count();
        let m_eff = m.max(1).min(n);
        let cap = n.div_ceil(m_eff);
        greedy(inst, m_eff, Objective::Both, Some(cap))
    }

    fn name(&self) -> &'static str {
        "SMART-equal"
    }
}

/// The Network-Only ablation: placement ignores the storage term.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkOnly;

impl Partitioner for NetworkOnly {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        greedy(inst, m, Objective::NetworkOnly, None)
    }

    fn name(&self) -> &'static str {
        "Network-Only"
    }
}

/// The Dedup-Only ablation: placement ignores the network term.
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupOnly;

impl Partitioner for DedupOnly {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        greedy(inst, m, Objective::StorageOnly, None)
    }

    fn name(&self) -> &'static str {
        "Dedup-Only"
    }
}

/// The matching-based SMART formulation: start from singleton partitions;
/// each round, compute the pairwise merge costs, greedily take the
/// cheapest non-overlapping merges (the best θ-fraction), and repeat
/// until only `m` partitions remain.
#[derive(Debug, Clone, Copy)]
pub struct MatchingPartitioner {
    /// Fraction of candidate merges kept per round, in `(0, 1]`.
    pub theta: f64,
}

impl Default for MatchingPartitioner {
    /// θ = 0.5 — halve the partition count each round.
    fn default() -> Self {
        MatchingPartitioner { theta: 0.5 }
    }
}

impl Partitioner for MatchingPartitioner {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        assert!(
            self.theta > 0.0 && self.theta <= 1.0,
            "theta must be in (0, 1]"
        );
        let n = inst.node_count();
        let m = m.max(1).min(n);
        let mut parts: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

        while parts.len() > m {
            // All pairwise merge deltas.
            let mut merges: Vec<(f64, usize, usize)> = Vec::new();
            for a in 0..parts.len() {
                for b in (a + 1)..parts.len() {
                    let mut merged = parts[a].clone();
                    merged.extend_from_slice(&parts[b]);
                    let delta = inst.ring_cost(&merged)
                        - inst.ring_cost(&parts[a])
                        - inst.ring_cost(&parts[b]);
                    merges.push((delta, a, b));
                }
            }
            // simlint::allow(D003): instance costs are finite by model validation
            merges.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite costs"));
            // Keep the cheapest non-overlapping θ-fraction, but at least
            // one merge so the loop always progresses.
            let budget =
                ((parts.len() as f64 * self.theta).floor() as usize).clamp(1, parts.len() - m);
            let mut used = vec![false; parts.len()];
            let mut chosen: Vec<(usize, usize)> = Vec::new();
            for (_, a, b) in merges {
                if chosen.len() == budget {
                    break;
                }
                if !used[a] && !used[b] {
                    used[a] = true;
                    used[b] = true;
                    chosen.push((a, b));
                }
            }
            // Apply merges (indices into the old `parts`).
            let mut merged_parts: Vec<Vec<usize>> = Vec::new();
            let mut consumed = vec![false; parts.len()];
            for (a, b) in chosen {
                let mut merged = parts[a].clone();
                merged.extend_from_slice(&parts[b]);
                merged_parts.push(merged);
                consumed[a] = true;
                consumed[b] = true;
            }
            for (i, p) in parts.into_iter().enumerate() {
                if !consumed[i] {
                    merged_parts.push(p);
                }
            }
            parts = merged_parts;
        }

        // simlint::allow(D003): the matching pass assigns every node exactly once
        Partition::new(parts).expect("matching builds a valid partition")
    }

    fn name(&self) -> &'static str {
        "SMART-matching"
    }
}

/// Uniformly random assignment of nodes to `m` rings (baseline).
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    /// RNG seed (deterministic baseline).
    pub seed: u64,
}

impl Partitioner for RandomPartitioner {
    fn partition(&self, inst: &Snod2Instance, m: usize) -> Partition {
        let n = inst.node_count();
        let m = m.max(1).min(n);
        let mut rng = DetRng::new(self.seed).substream("random-partition");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut rings: Vec<Vec<usize>> = vec![Vec::new(); m];
        // Deal round-robin so no ring is empty.
        for (i, v) in order.into_iter().enumerate() {
            rings[i % m].push(v);
        }
        // simlint::allow(D003): round-robin assigns every node exactly once
        Partition::new(rings).expect("random builds a valid partition")
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// Every node in one ring — maximum dedup, maximum network cost (the
/// global-dedup end of the spectrum).
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleRing;

impl Partitioner for SingleRing {
    fn partition(&self, inst: &Snod2Instance, _m: usize) -> Partition {
        // simlint::allow(D003): one ring holding 0..n is a valid partition by definition
        Partition::new(vec![(0..inst.node_count()).collect()]).expect("single ring is valid")
    }

    fn name(&self) -> &'static str {
        "Single-Ring"
    }
}

/// One ring per edge cloud — minimum network cost, weakest dedup (the
/// Fig. 1 "deduplicate each edge cloud separately" strawman).
#[derive(Debug, Clone)]
pub struct PerSite {
    /// `site_of[i]` is the edge-cloud index of node `i`.
    pub site_of: Vec<usize>,
}

impl Partitioner for PerSite {
    fn partition(&self, inst: &Snod2Instance, _m: usize) -> Partition {
        assert_eq!(
            self.site_of.len(),
            inst.node_count(),
            "site map must cover every node"
        );
        let mut by_site: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (node, &site) in self.site_of.iter().enumerate() {
            by_site.entry(site).or_default().push(node);
        }
        // simlint::allow(D003): grouping nodes by site assigns every node exactly once
        Partition::new(by_site.into_values().collect()).expect("per-site partition is valid")
    }

    fn name(&self) -> &'static str {
        "Per-Site"
    }
}

/// Exhaustive search over all partitions of `0..n` into at most `m`
/// rings. Exponential — intended for `n ≤ 10` in tests measuring the
/// heuristics' approximation ratio.
///
/// # Panics
///
/// Panics when `n > 12` (guards against accidental blow-up) or `m == 0`.
pub fn exhaustive_optimal(inst: &Snod2Instance, m: usize) -> (Partition, f64) {
    exhaustive_impl(inst, m, false)
}

/// Like [`exhaustive_optimal`] but requiring **exactly** `m` non-empty
/// rings — the form the minimum k-cut reduction (Theorem 2) needs, where
/// the cut count is fixed.
///
/// # Panics
///
/// Panics when `n > 12`, `m == 0`, or `m > n`.
pub fn exhaustive_optimal_exact(inst: &Snod2Instance, m: usize) -> (Partition, f64) {
    assert!(m <= inst.node_count(), "cannot use more rings than nodes");
    exhaustive_impl(inst, m, true)
}

fn exhaustive_impl(inst: &Snod2Instance, m: usize, exact: bool) -> (Partition, f64) {
    let n = inst.node_count();
    assert!(n <= 12, "exhaustive search limited to n <= 12");
    assert!(m > 0, "need at least one ring");

    // Enumerate set partitions via restricted growth strings.
    let mut assignment = vec![0usize; n];
    let mut best: Option<(Vec<usize>, f64)> = None;

    fn recurse(
        inst: &Snod2Instance,
        assignment: &mut Vec<usize>,
        idx: usize,
        max_label: usize,
        m: usize,
        exact: bool,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        let n = assignment.len();
        if idx == n {
            let rings_used = max_label + 1;
            if rings_used > m || (exact && rings_used != m) {
                return;
            }
            let mut rings: Vec<Vec<usize>> = vec![Vec::new(); rings_used];
            for (node, &label) in assignment.iter().enumerate() {
                rings[label].push(node);
            }
            let cost: f64 = rings.iter().map(|r| inst.ring_cost(r)).sum();
            match best {
                Some((_, b)) if *b <= cost => {}
                _ => *best = Some((assignment.clone(), cost)),
            }
            return;
        }
        for label in 0..=(max_label + 1).min(m - 1) {
            assignment[idx] = label;
            recurse(
                inst,
                assignment,
                idx + 1,
                max_label.max(label),
                m,
                exact,
                best,
            );
        }
    }

    // Node 0 always in ring 0 (canonical form).
    recurse(inst, &mut assignment, 1, 0, m, exact, &mut best);
    // Handle n == 1 (loop never ran).
    let (labels, cost) = best.unwrap_or_else(|| {
        assert!(!exact || m == 1, "no exact {m}-partition of one node");
        let rings = [vec![0usize]];
        let cost = inst.ring_cost(&rings[0]);
        (vec![0], cost)
    });
    let rings_used = labels.iter().max().copied().unwrap_or(0) + 1;
    let mut rings: Vec<Vec<usize>> = vec![Vec::new(); rings_used];
    for (node, &label) in labels.iter().enumerate() {
        rings[label].push(node);
    }
    (
        // simlint::allow(D003): the exhaustive enumeration emits complete assignments only
        Partition::new(rings).expect("exhaustive builds a valid partition"),
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_datagen::CharacteristicVector;

    /// 6 nodes in 2 correlation groups of 3, with network costs that make
    /// grouping by correlation moderately expensive for one pair.
    fn instance(alpha: f64) -> Snod2Instance {
        let v_a = CharacteristicVector::new(vec![0.8, 0.1, 0.1]).unwrap();
        let v_b = CharacteristicVector::new(vec![0.1, 0.8, 0.1]).unwrap();
        let probs = vec![v_a.clone(), v_a.clone(), v_a, v_b.clone(), v_b.clone(), v_b];
        // Sites: {0,3}, {1,4}, {2,5} — correlated nodes are *not*
        // co-located, the paper's central tension.
        let site = [0usize, 1, 2, 0, 1, 2];
        let mut costs = vec![vec![0.0; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    costs[i][j] = if site[i] == site[j] { 1.7 } else { 10.0 };
                }
            }
        }
        Snod2Instance::new(
            vec![2_000, 2_000, 100_000],
            vec![200.0; 6],
            probs,
            costs,
            alpha,
            2,
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn partition_normalization_and_validation() {
        let p = Partition::new(vec![vec![3, 1], vec![2, 0]]).unwrap();
        assert_eq!(p.rings(), &[vec![0, 2], vec![1, 3]]);
        assert!(p.validate(4).is_ok());
        assert_eq!(p.ring_of(3), Some(1));
        assert_eq!(p.ring_of(9), None);
        assert!(matches!(
            p.validate(5).unwrap_err(),
            PartitionError::Missing(4)
        ));
        assert!(matches!(
            p.validate(3).unwrap_err(),
            PartitionError::OutOfRange(3)
        ));
        assert!(matches!(
            Partition::new(vec![vec![0], vec![0]]).unwrap_err(),
            PartitionError::Duplicate(0)
        ));
        assert!(matches!(
            Partition::new(vec![vec![]]).unwrap_err(),
            PartitionError::EmptyRing
        ));
    }

    #[test]
    fn all_partitioners_produce_valid_covers() {
        let inst = instance(0.1);
        let site_of = vec![0usize, 1, 2, 0, 1, 2];
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(SmartGreedy),
            Box::new(EqualSizeGreedy),
            Box::new(MatchingPartitioner::default()),
            Box::new(NetworkOnly),
            Box::new(DedupOnly),
            Box::new(RandomPartitioner { seed: 1 }),
            Box::new(SingleRing),
            Box::new(PerSite { site_of }),
        ];
        for p in &partitioners {
            for m in 1..=6 {
                let part = p.partition(&inst, m);
                part.validate(6)
                    .unwrap_or_else(|e| panic!("{} with m={m}: {e}", p.name()));
                assert!(!p.name().is_empty());
            }
        }
    }

    #[test]
    fn smart_groups_correlated_nodes_when_alpha_small() {
        // With negligible network weight storage dominates: splitting
        // into two rings, the cheapest two-ring partition keeps each
        // correlation group intact.
        let inst = instance(0.0001);
        let part = SmartGreedy.partition(&inst, 2);
        assert_eq!(part.ring_count(), 2);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            assert_eq!(part.ring_of(a), part.ring_of(b), "{:?}", part.rings());
        }
        // Storage matches the by-group split exactly.
        let ideal = inst.storage_cost(&[0, 1, 2]) + inst.storage_cost(&[3, 4, 5]);
        let cost = inst.total_cost(&part);
        assert!(
            (cost.storage - ideal).abs() < 1e-6,
            "storage {} vs by-group ideal {}",
            cost.storage,
            ideal
        );
    }

    #[test]
    fn network_only_drives_network_cost_to_zero() {
        // With gamma = 2, any ring of size <= 2 has zero network cost, so
        // the Network-Only ablation can and should reach V = 0 — while
        // paying a storage cost SMART would not.
        let inst = instance(10.0);
        let part = NetworkOnly.partition(&inst, 3);
        let cost = inst.total_cost(&part);
        assert_eq!(cost.network, 0.0, "{:?}", part.rings());
        let smart_cost = inst.total_cost(&SmartGreedy.partition(&inst, 3));
        assert!(cost.storage >= smart_cost.storage - 1e-9);
    }

    #[test]
    fn smart_beats_or_matches_ablations() {
        // The headline claim of Fig. 6(c)/7: SMART's aggregate cost is at
        // most the ablations'.
        for alpha in [0.001, 0.01, 0.1] {
            let inst = instance(alpha);
            for m in 2..=4 {
                let smart = inst.total_cost(&SmartGreedy.partition(&inst, m)).aggregate;
                let net = inst.total_cost(&NetworkOnly.partition(&inst, m)).aggregate;
                let ded = inst.total_cost(&DedupOnly.partition(&inst, m)).aggregate;
                assert!(
                    smart <= net * 1.0001 && smart <= ded * 1.0001,
                    "alpha={alpha} m={m}: smart={smart} net={net} dedup={ded}"
                );
            }
        }
    }

    #[test]
    fn smart_close_to_exhaustive_optimum() {
        let inst = instance(0.05);
        let (_, opt) = exhaustive_optimal_exact(&inst, 3);
        let smart = inst.total_cost(&SmartGreedy.partition(&inst, 3)).aggregate;
        assert!(smart >= opt - 1e-9, "heuristic beat the optimum?");
        assert!(
            smart <= opt * 1.25,
            "approximation ratio too large: {smart} vs {opt}"
        );
    }

    #[test]
    fn equal_size_respects_cap() {
        let inst = instance(0.1);
        let part = EqualSizeGreedy.partition(&inst, 3);
        for ring in part.rings() {
            assert!(ring.len() <= 2, "ring over cap: {ring:?}");
        }
        assert_eq!(part.node_count(), 6);
    }

    #[test]
    fn matching_reaches_target_count() {
        let inst = instance(0.1);
        for m in 1..=6 {
            let part = MatchingPartitioner::default().partition(&inst, m);
            assert!(part.ring_count() <= m.max(1));
            assert_eq!(part.node_count(), 6);
        }
    }

    #[test]
    fn matching_quality_near_greedy() {
        let inst = instance(0.05);
        let greedy_cost = inst.total_cost(&SmartGreedy.partition(&inst, 2)).aggregate;
        let matching_cost = inst
            .total_cost(&MatchingPartitioner::default().partition(&inst, 2))
            .aggregate;
        assert!(
            matching_cost <= greedy_cost * 1.3,
            "matching {matching_cost} much worse than greedy {greedy_cost}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let inst = instance(0.1);
        let a = RandomPartitioner { seed: 7 }.partition(&inst, 3);
        let b = RandomPartitioner { seed: 7 }.partition(&inst, 3);
        let c = RandomPartitioner { seed: 8 }.partition(&inst, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_ring_and_per_site_shapes() {
        let inst = instance(0.1);
        assert_eq!(SingleRing.partition(&inst, 5).ring_count(), 1);
        let per_site = PerSite {
            site_of: vec![0, 1, 2, 0, 1, 2],
        }
        .partition(&inst, 0);
        assert_eq!(per_site.ring_count(), 3);
    }

    #[test]
    fn exhaustive_matches_manual_small_case() {
        // 3 nodes: two highly correlated + one independent; zero network
        // cost → optimum groups the correlated pair (m=2).
        let v_a = CharacteristicVector::new(vec![1.0, 0.0]).unwrap();
        let v_b = CharacteristicVector::new(vec![0.0, 1.0]).unwrap();
        let inst = Snod2Instance::new(
            vec![100, 100_000],
            vec![50.0; 3],
            vec![v_a.clone(), v_a, v_b],
            vec![vec![0.0; 3]; 3],
            0.1,
            1,
            10.0,
        )
        .unwrap();
        let (part, _) = exhaustive_optimal_exact(&inst, 2);
        assert_eq!(part.ring_of(0), part.ring_of(1));
        assert_ne!(part.ring_of(0), part.ring_of(2));
        // The relaxed (≤ m) search may merge everything instead.
        let (relaxed, relaxed_cost) = exhaustive_optimal(&inst, 2);
        assert!(relaxed_cost <= inst.total_cost(&part).aggregate + 1e-9);
        relaxed.validate(3).unwrap();
    }

    #[test]
    fn greedy_m_larger_than_n_is_fine() {
        let inst = instance(0.1);
        let part = SmartGreedy.partition(&inst, 50);
        part.validate(6).unwrap();
    }
}
