//! The Theorem 2 construction: minimum k-cut → SNOD2.
//!
//! The paper proves SNOD2 NP-hard by mapping any edge-weighted graph to a
//! SNOD2 instance with zero network cost such that minimizing storage
//! cost is equivalent to minimizing the weight of cut edges. This module
//! implements that construction faithfully so the algebra of the proof is
//! machine-checked: for every partition,
//!
//! `SNOD2_objective(partition) = constant + Σ_{cut edges} w(e)`.

use crate::model::Snod2Instance;
use crate::partition::Partition;
use ef_datagen::CharacteristicVector;
use std::collections::BTreeSet;

/// An undirected edge-weighted graph for the reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl WeightedGraph {
    /// Creates a graph on `n` vertices with the given weighted edges.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range, an edge is a self-loop or
    /// duplicate, or a weight is not positive and finite.
    pub fn new(n: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        assert!(n > 0, "graph needs at least one vertex");
        let mut seen = BTreeSet::new();
        for &(u, v, w) in &edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops not allowed");
            assert!(w.is_finite() && w > 0.0, "invalid edge weight {w}");
            let key = (u.min(v), u.max(v));
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
        WeightedGraph { n, edges }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The edges `(u, v, w)`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Degree (edge count) of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges
            .iter()
            .filter(|(a, b, _)| *a == v || *b == v)
            .count()
    }

    /// Total weight of edges whose endpoints land in different rings of
    /// `partition` — the k-cut objective (Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics when the partition does not cover the vertices.
    pub fn cut_weight(&self, partition: &Partition) -> f64 {
        // simlint::allow(D003): documented panic contract; cutting an invalid partition would be meaningless
        partition.validate(self.n).expect("valid partition");
        self.edges
            .iter()
            .filter(|(u, v, _)| partition.ring_of(*u) != partition.ring_of(*v))
            .map(|(_, _, w)| w)
            .sum()
    }
}

/// The result of the Theorem 2 construction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The constructed SNOD2 instance (zero network cost).
    pub instance: Snod2Instance,
    /// The additive constant `Σ_k s_k (1 - c²)` of the equivalence.
    pub constant: f64,
    /// The constant `c ∈ (0,1)` used in the construction.
    pub c: f64,
}

/// Builds the SNOD2 instance of Theorem 2 from a graph.
///
/// For each edge `(u, v)` with weight `w`, a dedicated chunk pool of size
/// `w / (1 - c)²` is created; vertex `u` has probability `1/d(u)` of
/// drawing from each of its incident pools; rates are chosen so that
/// `g = c` exactly for incident (vertex, pool) pairs.
///
/// Because rates must be equal for all pools of a vertex while the paper
/// sets `R_v` per (vertex, pool), we use the standard trick of equalizing:
/// with `p_vk = 1/d(v)` and pool size `s_k`, choosing
/// `R_v T = ln(c) / ln(1 - p_v/s_k)` requires `s_k ∝` the same base — we
/// instead follow the paper literally and give **every pool the same size
/// `s`** by scaling weights: pools of size `s = w_max / (1-c)²` and edge
/// weights are embedded via *duplicated pools* — `round(w / w_unit)` unit
/// pools per edge, with `w_unit` an input resolution.
///
/// This preserves the equivalence up to weight quantization:
/// `objective = const + Σ_cut round(w/w_unit)·w_unit`.
///
/// # Panics
///
/// Panics when `c ∉ (0,1)` or `weight_unit` is not positive.
pub fn reduce_k_cut(graph: &WeightedGraph, c: f64, weight_unit: f64) -> Reduction {
    assert!((0.0..1.0).contains(&c) && c > 0.0, "c must be in (0,1)");
    assert!(
        weight_unit.is_finite() && weight_unit > 0.0,
        "invalid weight unit"
    );
    let n = graph.vertex_count();

    // One unit pool per quantized weight unit of each edge. Every pool
    // has identical size s, so a single per-vertex rate gives g = c for
    // all incident pools simultaneously.
    let s: u64 = 1_000;
    let mut pool_edges: Vec<(usize, usize)> = Vec::new();
    for &(u, v, w) in graph.edges() {
        let copies = (w / weight_unit).round().max(1.0) as usize;
        for _ in 0..copies {
            pool_edges.push((u, v));
        }
    }
    assert!(!pool_edges.is_empty(), "graph has no edges");
    let k = pool_edges.len();

    // Vertex degrees in pool multiplicity (each unit pool counts).
    let mut deg = vec![0usize; n];
    for &(u, v) in &pool_edges {
        deg[u] += 1;
        deg[v] += 1;
    }

    // p_vk = 1/deg(v) for incident pools. Rate: g = (1 - p/s)^{R T} = c
    // → R T = ln c / ln(1 - 1/(deg(v) * s)).
    let horizon = 1.0;
    let mut probs = Vec::with_capacity(n);
    let mut rates = Vec::with_capacity(n);
    for (v, &dv) in deg.iter().enumerate() {
        let mut p = vec![0.0; k];
        if dv > 0 {
            for (kk, &(a, b)) in pool_edges.iter().enumerate() {
                if a == v || b == v {
                    p[kk] = 1.0 / dv as f64;
                }
            }
            let frac = 1.0 / (dv as f64 * s as f64);
            let rate = c.ln() / (-frac).ln_1p() / horizon;
            rates.push(rate);
        } else {
            // Isolated vertex: give it a vanishing draw from pool 0 so the
            // instance stays valid; it contributes a constant.
            p[0] = 1e-12;
            rates.push(1e-9);
        }
        // simlint::allow(D003): weights are clamped strictly positive two lines up
        probs.push(CharacteristicVector::from_weights(p).expect("valid weights"));
    }

    // Zero network cost.
    let costs = vec![vec![0.0; n]; n];
    let instance = Snod2Instance::new(
        vec![s; k],
        rates,
        probs,
        costs,
        0.0, // alpha irrelevant with zero costs
        1,
        horizon,
    )
    // simlint::allow(D003): the reduction constructs model parameters that satisfy the instance invariants
    .expect("reduction instance is valid");

    // Unit pools have size s' = w_unit/(1-c)^2 in the paper; we use size s
    // and scale: each unit pool contributes s·(1-c)² per cut unit. The
    // reported constant likewise scales with s.
    let constant = k as f64 * s as f64 * (1.0 - c * c);
    Reduction {
        instance,
        constant,
        c,
    }
}

/// The storage objective of the reduced instance for a partition,
/// normalized back to (quantized) cut weight:
/// `(objective - constant) / (s (1-c)²) * weight_unit`.
pub fn objective_as_cut_weight(red: &Reduction, partition: &Partition, weight_unit: f64) -> f64 {
    let cost = red.instance.total_cost(partition);
    let s = red.instance.pool_sizes()[0] as f64;
    (cost.storage - red.constant) / (s * (1.0 - red.c) * (1.0 - red.c)) * weight_unit
}

/// Brute-force minimum k-cut for small graphs (test oracle).
///
/// # Panics
///
/// Panics when `n > 10`.
pub fn min_k_cut_brute(graph: &WeightedGraph, k: usize) -> (Partition, f64) {
    let n = graph.vertex_count();
    assert!(n <= 10, "brute force limited to n <= 10");
    let mut best: Option<(Partition, f64)> = None;
    let mut assignment = vec![0usize; n];

    fn recurse(
        graph: &WeightedGraph,
        assignment: &mut Vec<usize>,
        idx: usize,
        max_label: usize,
        k: usize,
        best: &mut Option<(Partition, f64)>,
    ) {
        let n = assignment.len();
        if idx == n {
            let rings_used = max_label + 1;
            if rings_used != k {
                return;
            }
            let mut rings: Vec<Vec<usize>> = vec![Vec::new(); rings_used];
            for (v, &l) in assignment.iter().enumerate() {
                rings[l].push(v);
            }
            // simlint::allow(D003): the enumerated assignment places every vertex exactly once
            let partition = Partition::new(rings).expect("valid partition");
            let w = graph.cut_weight(&partition);
            match best {
                Some((_, b)) if *b <= w => {}
                _ => *best = Some((partition, w)),
            }
            return;
        }
        for label in 0..=(max_label + 1).min(k - 1) {
            assignment[idx] = label;
            recurse(graph, assignment, idx + 1, max_label.max(label), k, best);
        }
    }

    recurse(graph, &mut assignment, 1, 0, k, &mut best);
    // simlint::allow(D003): recursion over k >= 1 labels always yields at least one assignment
    best.expect("some k-partition exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_one() -> WeightedGraph {
        // Triangle 0-1-2 with a pendant vertex 3.
        WeightedGraph::new(4, vec![(0, 1, 3.0), (1, 2, 1.0), (0, 2, 2.0), (2, 3, 4.0)])
    }

    #[test]
    fn graph_validation() {
        let g = triangle_plus_one();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        WeightedGraph::new(2, vec![(0, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        WeightedGraph::new(2, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = triangle_plus_one();
        let p = Partition::new(vec![vec![0, 1, 2], vec![3]]).unwrap();
        assert_eq!(g.cut_weight(&p), 4.0);
        let q = Partition::new(vec![vec![0], vec![1, 2, 3]]).unwrap();
        assert_eq!(g.cut_weight(&q), 5.0);
    }

    #[test]
    fn reduction_objective_tracks_cut_weight() {
        // The heart of Theorem 2: objective = const + cut weight, for
        // every partition.
        let g = triangle_plus_one();
        let red = reduce_k_cut(&g, 0.5, 1.0);
        for rings in [
            vec![vec![0, 1, 2, 3]],
            vec![vec![0, 1, 2], vec![3]],
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0], vec![1], vec![2], vec![3]],
            vec![vec![0, 3], vec![1, 2]],
        ] {
            let p = Partition::new(rings).unwrap();
            let recovered = objective_as_cut_weight(&red, &p, 1.0);
            let actual = g.cut_weight(&p);
            assert!(
                (recovered - actual).abs() < 0.05,
                "partition {:?}: recovered {recovered} vs cut {actual}",
                p.rings()
            );
        }
    }

    #[test]
    fn minimizing_snod2_solves_min_k_cut() {
        let g = triangle_plus_one();
        let red = reduce_k_cut(&g, 0.5, 1.0);
        let (snod_best, _) = crate::partition::exhaustive_optimal_exact(&red.instance, 2);
        let (_, cut_best) = min_k_cut_brute(&g, 2);
        assert!(
            (g.cut_weight(&snod_best) - cut_best).abs() < 1e-9,
            "SNOD2 optimum {:?} has cut {} but min 2-cut is {}",
            snod_best.rings(),
            g.cut_weight(&snod_best),
            cut_best
        );
    }

    #[test]
    fn min_k_cut_brute_small_oracle() {
        // Two cliques joined by one light edge: the min 2-cut removes it.
        let g = WeightedGraph::new(4, vec![(0, 1, 10.0), (2, 3, 10.0), (1, 2, 1.0)]);
        let (p, w) = min_k_cut_brute(&g, 2);
        assert_eq!(w, 1.0);
        assert_eq!(p.ring_of(0), p.ring_of(1));
        assert_eq!(p.ring_of(2), p.ring_of(3));
        assert_ne!(p.ring_of(0), p.ring_of(2));
    }

    #[test]
    fn reduction_with_different_c_values() {
        let g = triangle_plus_one();
        for c in [0.3, 0.5, 0.7] {
            let red = reduce_k_cut(&g, c, 1.0);
            let p = Partition::new(vec![vec![0, 1], vec![2, 3]]).unwrap();
            let recovered = objective_as_cut_weight(&red, &p, 1.0);
            assert!(
                (recovered - g.cut_weight(&p)).abs() < 0.1,
                "c={c}: {recovered} vs {}",
                g.cut_weight(&p)
            );
        }
    }

    #[test]
    fn weight_quantization_respected() {
        let g = WeightedGraph::new(3, vec![(0, 1, 2.5), (1, 2, 1.0)]);
        let red = reduce_k_cut(&g, 0.5, 0.5); // resolution 0.5 → exact
        let p = Partition::new(vec![vec![0], vec![1, 2]]).unwrap();
        let recovered = objective_as_cut_weight(&red, &p, 0.5);
        assert!((recovered - 2.5).abs() < 0.05, "recovered {recovered}");
    }
}
