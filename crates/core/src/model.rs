//! The SNOD2 analytics (paper Sec. II and Theorem 1).
//!
//! * Theorem 1: the expected deduplication ratio of a node set under the
//!   chunk-pool model,
//! * Eq. (1): storage cost `U(P)`,
//! * Eq. (2): network cost `V(P)`,
//! * Eq. (3): the SNOD2 objective `Σ U(P_s) + α Σ V(P_s)`.

use crate::partition::Partition;
use ef_datagen::{CharacteristicVector, GenerativeModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Snod2Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// No nodes.
    NoNodes,
    /// The cost matrix is not square `N×N`.
    BadCostMatrix,
    /// A cost entry is negative or not finite.
    InvalidCost(f64),
    /// A rate is not positive and finite.
    InvalidRate(f64),
    /// A characteristic vector's length does not match the pool count.
    VectorLengthMismatch,
    /// Alpha is negative or not finite.
    InvalidAlpha(f64),
    /// Gamma (replication factor) is zero.
    ZeroGamma,
    /// Horizon is not positive and finite.
    InvalidHorizon(f64),
    /// A pool has zero size.
    EmptyPool(usize),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoNodes => write!(f, "instance needs at least one node"),
            InstanceError::BadCostMatrix => write!(f, "cost matrix must be square N x N"),
            InstanceError::InvalidCost(c) => write!(f, "invalid network cost {c}"),
            InstanceError::InvalidRate(r) => write!(f, "invalid data rate {r}"),
            InstanceError::VectorLengthMismatch => {
                write!(f, "characteristic vector length does not match pool count")
            }
            InstanceError::InvalidAlpha(a) => write!(f, "invalid alpha {a}"),
            InstanceError::ZeroGamma => write!(f, "replication factor gamma must be positive"),
            InstanceError::InvalidHorizon(t) => write!(f, "invalid horizon {t}"),
            InstanceError::EmptyPool(k) => write!(f, "pool {k} has zero size"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// The costs of a partition under the SNOD2 objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PartitionCost {
    /// Total storage cost `Σ U(P_s)` in expected unique chunks.
    pub storage: f64,
    /// Total network cost `Σ V(P_s)` in `v_ij`-weighted lookups.
    pub network: f64,
    /// `storage + alpha * network` — Eq. (3).
    pub aggregate: f64,
}

/// A complete SNOD2 problem instance (Eq. 3).
///
/// Nodes are indexed `0..n`; index `i` corresponds to row/column `i` of
/// the cost matrix and entry `i` of the rates/vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snod2Instance {
    pool_sizes: Vec<u64>,
    rates: Vec<f64>,
    probs: Vec<CharacteristicVector>,
    costs: Vec<Vec<f64>>,
    alpha: f64,
    gamma: usize,
    horizon: f64,
}

impl Snod2Instance {
    /// Creates an instance from raw parts.
    ///
    /// * `pool_sizes` — `s_k` for each pool,
    /// * `rates` — `R_i` chunks/second per node,
    /// * `probs` — characteristic vector per node,
    /// * `costs` — `v_ij` (e.g. RTT ms; diagonal ignored),
    /// * `alpha` — network-to-storage trade-off factor,
    /// * `gamma` — chunk-hash replication factor,
    /// * `horizon` — the window `T` in seconds.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] when any component is inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pool_sizes: Vec<u64>,
        rates: Vec<f64>,
        probs: Vec<CharacteristicVector>,
        costs: Vec<Vec<f64>>,
        alpha: f64,
        gamma: usize,
        horizon: f64,
    ) -> Result<Self, InstanceError> {
        let n = rates.len();
        if n == 0 {
            return Err(InstanceError::NoNodes);
        }
        if probs.len() != n || costs.len() != n || costs.iter().any(|row| row.len() != n) {
            return Err(InstanceError::BadCostMatrix);
        }
        if let Some(k) = pool_sizes.iter().position(|&s| s == 0) {
            return Err(InstanceError::EmptyPool(k));
        }
        for &r in &rates {
            if !r.is_finite() || r <= 0.0 {
                return Err(InstanceError::InvalidRate(r));
            }
        }
        for p in &probs {
            if p.pool_count() != pool_sizes.len() {
                return Err(InstanceError::VectorLengthMismatch);
            }
        }
        for row in &costs {
            for &c in row {
                if !c.is_finite() || c < 0.0 {
                    return Err(InstanceError::InvalidCost(c));
                }
            }
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(InstanceError::InvalidAlpha(alpha));
        }
        if gamma == 0 {
            return Err(InstanceError::ZeroGamma);
        }
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(InstanceError::InvalidHorizon(horizon));
        }
        Ok(Snod2Instance {
            pool_sizes,
            rates,
            probs,
            costs,
            alpha,
            gamma,
            horizon,
        })
    }

    /// Builds an instance from a datagen [`GenerativeModel`] plus a
    /// measured cost matrix.
    ///
    /// # Errors
    ///
    /// See [`Snod2Instance::new`].
    pub fn from_parts(
        model: &GenerativeModel,
        costs: Vec<Vec<f64>>,
        alpha: f64,
        gamma: usize,
        horizon: f64,
    ) -> Result<Self, InstanceError> {
        Snod2Instance::new(
            model.pool_sizes().to_vec(),
            model.sources().iter().map(|s| s.rate).collect(),
            model.sources().iter().map(|s| s.probs.clone()).collect(),
            costs,
            alpha,
            gamma,
            horizon,
        )
    }

    /// Number of nodes `N`.
    pub fn node_count(&self) -> usize {
        self.rates.len()
    }

    /// Number of pools `K`.
    pub fn pool_count(&self) -> usize {
        self.pool_sizes.len()
    }

    /// Pool sizes `s_k`.
    pub fn pool_sizes(&self) -> &[u64] {
        &self.pool_sizes
    }

    /// Node data rates `R_i` (chunks/second).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Characteristic vectors.
    pub fn probs(&self) -> &[CharacteristicVector] {
        &self.probs
    }

    /// Network cost `v_ij`.
    pub fn cost(&self, i: usize, j: usize) -> f64 {
        self.costs[i][j]
    }

    /// The trade-off factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns a copy with a different α (the Fig. 7(b) sweep).
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite α.
    pub fn with_alpha(&self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "invalid alpha {alpha}");
        let mut inst = self.clone();
        inst.alpha = alpha;
        inst
    }

    /// Replication factor γ.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The window `T` in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// `g_ik`: the probability that a given chunk of pool `k` is never
    /// selected by node `i` during the horizon (Eq. 8):
    /// `(1 - p_ik / s_k)^{R_i T}`, computed in log space for stability
    /// with large exponents.
    pub fn g(&self, i: usize, k: usize) -> f64 {
        let p = self.probs[i].prob(k);
        if p == 0.0 {
            return 1.0;
        }
        let s = self.pool_sizes[k] as f64;
        let frac = (p / s).min(1.0);
        if frac >= 1.0 {
            return 0.0;
        }
        let draws = self.rates[i] * self.horizon;
        (draws * (-frac).ln_1p()).exp()
    }

    /// The expected number of distinct chunks a node set draws during the
    /// horizon: `Σ_k s_k (1 - Π_{i∈set} g_ik)` — the denominator of
    /// Theorem 1.
    ///
    /// Returns 0 for an empty set.
    pub fn expected_unique_chunks(&self, set: &[usize]) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for k in 0..self.pool_sizes.len() {
            let mut survive = 1.0;
            for &i in set {
                survive *= self.g(i, k);
            }
            total += self.pool_sizes[k] as f64 * (1.0 - survive);
        }
        total
    }

    /// Total chunks generated by a node set during the horizon:
    /// `Σ_{i∈set} R_i T`.
    pub fn total_chunks(&self, set: &[usize]) -> f64 {
        set.iter().map(|&i| self.rates[i] * self.horizon).sum()
    }

    /// **Theorem 1**: the expected dedup ratio `Ω(P)` of a node set.
    ///
    /// Returns 1.0 for an empty set.
    pub fn dedup_ratio(&self, set: &[usize]) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        let unique = self.expected_unique_chunks(set);
        if unique == 0.0 {
            return 1.0;
        }
        self.total_chunks(set) / unique
    }

    /// **Eq. (1)** storage cost `U(P) = (1/Ω(P)) Σ_{i∈P} R_i T`, i.e. the
    /// expected unique chunks stored for ring `P`.
    pub fn storage_cost(&self, set: &[usize]) -> f64 {
        self.expected_unique_chunks(set)
    }

    /// **Eq. (2)** network cost of a ring:
    /// `Σ_{i∈P} Σ_{j≠i∈P} v_ij R_i T (1-γ/|P|) / (|P|-1)`.
    ///
    /// Each node's `R_i T` lookups go non-local with probability
    /// `1-γ/|P|` (clamped at 0 when `γ ≥ |P|`) and land on each peer with
    /// equal probability.
    pub fn network_cost(&self, set: &[usize]) -> f64 {
        let p = set.len();
        if p <= 1 {
            return 0.0;
        }
        let nonlocal = (1.0 - self.gamma as f64 / p as f64).max(0.0);
        if nonlocal == 0.0 {
            return 0.0;
        }
        let spread = 1.0 / (p as f64 - 1.0);
        let mut total = 0.0;
        for &i in set {
            let lookups = self.rates[i] * self.horizon;
            for &j in set {
                if i != j {
                    total += self.costs[i][j] * lookups * nonlocal * spread;
                }
            }
        }
        total
    }

    /// The ring's aggregate cost `U(P) + α V(P)`.
    pub fn ring_cost(&self, set: &[usize]) -> f64 {
        self.storage_cost(set) + self.alpha * self.network_cost(set)
    }

    /// **Eq. (3)**: the full objective over a partition.
    ///
    /// # Panics
    ///
    /// Panics when `partition` is not a valid disjoint cover of the
    /// instance's nodes.
    pub fn total_cost(&self, partition: &Partition) -> PartitionCost {
        partition
            .validate(self.node_count())
            // simlint::allow(D003): documented panic contract; costing an invalid partition would be meaningless
            .expect("valid partition");
        let mut storage = 0.0;
        let mut network = 0.0;
        for ring in partition.rings() {
            storage += self.storage_cost(ring);
            network += self.network_cost(ring);
        }
        PartitionCost {
            storage,
            network,
            aggregate: storage + self.alpha * network,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_datagen::{GenerativeModel, SourceSpec};
    use ef_simcore::DetRng;

    fn small_instance() -> Snod2Instance {
        // 4 nodes, 2 pools. Nodes 0,1 favour pool 0; nodes 2,3 pool 1.
        let v_a = CharacteristicVector::new(vec![0.9, 0.1]).unwrap();
        let v_b = CharacteristicVector::new(vec![0.1, 0.9]).unwrap();
        let costs = vec![
            vec![0.0, 1.0, 10.0, 10.0],
            vec![1.0, 0.0, 10.0, 10.0],
            vec![10.0, 10.0, 0.0, 1.0],
            vec![10.0, 10.0, 1.0, 0.0],
        ];
        Snod2Instance::new(
            vec![1_000, 1_000],
            vec![100.0; 4],
            vec![v_a.clone(), v_a, v_b.clone(), v_b],
            costs,
            0.1,
            2,
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_errors() {
        let v = CharacteristicVector::uniform(2);
        assert_eq!(
            Snod2Instance::new(vec![1], vec![], vec![], vec![], 0.1, 1, 1.0).unwrap_err(),
            InstanceError::NoNodes
        );
        assert_eq!(
            Snod2Instance::new(
                vec![1, 1],
                vec![1.0],
                vec![v.clone()],
                vec![vec![0.0, 1.0]],
                0.1,
                1,
                1.0
            )
            .unwrap_err(),
            InstanceError::BadCostMatrix
        );
        assert!(matches!(
            Snod2Instance::new(
                vec![0, 1],
                vec![1.0],
                vec![v.clone()],
                vec![vec![0.0]],
                0.1,
                1,
                1.0
            )
            .unwrap_err(),
            InstanceError::EmptyPool(0)
        ));
        assert!(matches!(
            Snod2Instance::new(
                vec![1, 1],
                vec![-1.0],
                vec![v.clone()],
                vec![vec![0.0]],
                0.1,
                1,
                1.0
            )
            .unwrap_err(),
            InstanceError::InvalidRate(_)
        ));
        assert_eq!(
            Snod2Instance::new(
                vec![1, 1],
                vec![1.0],
                vec![v.clone()],
                vec![vec![0.0]],
                0.1,
                0,
                1.0
            )
            .unwrap_err(),
            InstanceError::ZeroGamma
        );
        assert!(matches!(
            Snod2Instance::new(
                vec![1, 1],
                vec![1.0],
                vec![v],
                vec![vec![0.0]],
                f64::NAN,
                1,
                1.0
            )
            .unwrap_err(),
            InstanceError::InvalidAlpha(_)
        ));
    }

    #[test]
    fn g_matches_direct_formula_for_small_exponent() {
        let inst = small_instance();
        // g_00 = (1 - 0.9/1000)^(100*10)
        let direct = (1.0f64 - 0.9 / 1000.0).powi(1000);
        assert!((inst.g(0, 0) - direct).abs() < 1e-12);
        // Zero-probability pool: g = 1.
        let v = CharacteristicVector::new(vec![1.0, 0.0]).unwrap();
        let inst2 = Snod2Instance::new(
            vec![10, 10],
            vec![1.0],
            vec![v],
            vec![vec![0.0]],
            0.1,
            1,
            1.0,
        )
        .unwrap();
        assert_eq!(inst2.g(0, 1), 1.0);
    }

    #[test]
    fn theorem1_matches_monte_carlo() {
        // Validate the closed form against simulation of the generative
        // process itself.
        let inst = small_instance();
        let model = GenerativeModel::new(
            vec![1_000, 1_000],
            64,
            vec![
                SourceSpec::new(100.0, inst.probs()[0].clone()),
                SourceSpec::new(100.0, inst.probs()[1].clone()),
            ],
        )
        .unwrap();
        let set = [0usize, 1];
        let analytic = inst.dedup_ratio(&set);

        let mut ratios = Vec::new();
        for trial in 0..40 {
            let mut rng = DetRng::new(1000 + trial);
            // R_i * T = 1000 chunks each.
            let a = model.draw_refs(0, 1000, &mut rng);
            let b = model.draw_refs(1, 1000, &mut rng);
            let distinct = GenerativeModel::distinct_refs(&[a, b]);
            ratios.push(2000.0 / distinct as f64);
        }
        let mc = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (analytic - mc).abs() / mc < 0.02,
            "analytic {analytic} vs monte-carlo {mc}"
        );
    }

    #[test]
    fn correlated_sets_dedup_better() {
        let inst = small_instance();
        let correlated = inst.dedup_ratio(&[0, 1]);
        let uncorrelated = inst.dedup_ratio(&[0, 2]);
        assert!(
            correlated > uncorrelated,
            "correlated {correlated} <= uncorrelated {uncorrelated}"
        );
    }

    #[test]
    fn dedup_ratio_at_least_one_and_monotone_in_set() {
        let inst = small_instance();
        for set in [&[0][..], &[1], &[0, 1], &[0, 1, 2], &[0, 1, 2, 3]] {
            assert!(inst.dedup_ratio(set) >= 1.0 - 1e-12);
        }
        // Joint storage never exceeds the sum of individual storage.
        let joint = inst.storage_cost(&[0, 1, 2, 3]);
        let separate: f64 = (0..4).map(|i| inst.storage_cost(&[i])).sum();
        assert!(joint <= separate + 1e-9);
    }

    #[test]
    fn network_cost_zero_for_singletons_and_full_replication() {
        let inst = small_instance();
        assert_eq!(inst.network_cost(&[0]), 0.0);
        // gamma=2 and |P|=2: every hash is on both nodes → all local.
        assert_eq!(inst.network_cost(&[0, 1]), 0.0);
        // |P|=4 > gamma: non-zero.
        assert!(inst.network_cost(&[0, 1, 2, 3]) > 0.0);
    }

    #[test]
    fn network_cost_formula_hand_check() {
        let inst = small_instance();
        // set {0,1,2}: nonlocal = 1 - 2/3 = 1/3, spread = 1/2,
        // lookups per node = 1000.
        // v sums: node0→(1,10)=11, node1→(1,10)=11, node2→(10,10)=20.
        let expect = (11.0 + 11.0 + 20.0) * 1000.0 / 3.0 / 2.0;
        let got = inst.network_cost(&[0, 1, 2]);
        assert!((got - expect).abs() < 1e-6, "got {got} expect {expect}");
    }

    #[test]
    fn total_cost_composes_rings() {
        let inst = small_instance();
        let p = Partition::new(vec![vec![0, 1], vec![2, 3]]).unwrap();
        let cost = inst.total_cost(&p);
        let manual_storage = inst.storage_cost(&[0, 1]) + inst.storage_cost(&[2, 3]);
        assert!((cost.storage - manual_storage).abs() < 1e-9);
        assert!((cost.aggregate - (cost.storage + 0.1 * cost.network)).abs() < 1e-9);
    }

    #[test]
    fn good_partition_beats_bad_partition() {
        // The Fig. 1 intuition: grouping correlated nodes wins when
        // network costs are comparable.
        let inst = small_instance();
        let good = Partition::new(vec![vec![0, 1], vec![2, 3]]).unwrap();
        let bad = Partition::new(vec![vec![0, 2], vec![1, 3]]).unwrap();
        assert!(inst.total_cost(&good).aggregate < inst.total_cost(&bad).aggregate);
    }

    #[test]
    fn with_alpha_changes_tradeoff() {
        let inst = small_instance();
        let p = Partition::new(vec![vec![0, 1, 2, 3]]).unwrap();
        let lo = inst.with_alpha(0.0).total_cost(&p);
        let hi = inst.with_alpha(10.0).total_cost(&p);
        assert_eq!(lo.aggregate, lo.storage);
        assert!(hi.aggregate > lo.aggregate);
    }

    #[test]
    fn large_exponent_is_stable() {
        // R_i T large enough that naive powi would under/overflow.
        let v = CharacteristicVector::new(vec![1.0]).unwrap();
        let inst = Snod2Instance::new(vec![100], vec![1e9], vec![v], vec![vec![0.0]], 0.1, 1, 1e3)
            .unwrap();
        let g = inst.g(0, 0);
        assert!((0.0..1e-300).contains(&g) || g == 0.0);
        // With that many draws every chunk of the pool is seen.
        assert!((inst.expected_unique_chunks(&[0]) - 100.0).abs() < 1e-9);
    }
}
