//! Algorithm 1: estimating source characteristic vectors.
//!
//! Given a handful of files sampled from each source at a point in time,
//! the estimator
//!
//! 1. measures **ground truth**: the real dedup ratio of every probe
//!    subset of the samples (the paper uses duperemove; we use the
//!    `ef-chunking` measurement),
//! 2. **fits** the chunk-pool model — pool sizes `s_k` and per-source
//!    characteristic vectors `p_ik` — by minimizing the mean squared error
//!    between the analytical dedup ratio (Theorem 1) and the measured
//!    ones,
//! 3. supports **warm starts**: at time slot `t` the search starts from
//!    the slot `t−1` fit, which the paper reports makes re-estimation
//!    converge "extremely quickly … with even smaller errors" (Fig. 3).
//!
//! The paper's fit is an exhaustive grid search (pool sizes up to 200 000
//! in steps of 100, probabilities in steps of 0.01). We keep the same
//! search space but replace full enumeration with seeded multi-start
//! coordinate descent, which reaches the paper's < 4 % error bound in a
//! fraction of the paper's ~4 minutes.

use crate::model::Snod2Instance;
use ef_chunking::{joint_dedup_ratio, Chunker};
use ef_datagen::CharacteristicVector;
use ef_simcore::stats::{mean_relative_error, mse};
use ef_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// Measured dedup ratios of probe subsets of sampled files — the ground
/// truth Algorithm 1 fits against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Probe subsets (indices into the sampled sources).
    pub subsets: Vec<Vec<usize>>,
    /// Measured dedup ratio per subset.
    pub measured: Vec<f64>,
    /// Number of chunks in each source's sample (the `R_i T` of the fit).
    pub sample_chunks: Vec<f64>,
}

impl GroundTruth {
    /// Measures ground truth for one file sample per source: all
    /// singletons, all pairs, and the full set.
    ///
    /// # Panics
    ///
    /// Panics when `files` is empty or any file is empty.
    pub fn measure<C: Chunker>(chunker: &C, files: &[Vec<u8>]) -> GroundTruth {
        assert!(!files.is_empty(), "need at least one sampled file");
        assert!(
            files.iter().all(|f| !f.is_empty()),
            "sampled files must be non-empty"
        );
        let n = files.len();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            subsets.push(vec![i]);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                subsets.push(vec![i, j]);
            }
        }
        if n > 2 {
            subsets.push((0..n).collect());
        }
        let measured = subsets
            .iter()
            .map(|set| {
                let views: Vec<&[u8]> = set.iter().map(|&i| files[i].as_slice()).collect();
                joint_dedup_ratio(chunker, &views)
            })
            .collect();
        let sample_chunks = files
            .iter()
            .map(|f| (f.len() as f64 / chunker.target_chunk_size() as f64).ceil())
            .collect();
        GroundTruth {
            subsets,
            measured,
            sample_chunks,
        }
    }
}

/// The fitted chunk-pool model returned by the estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// Fitted pool sizes `s_k`.
    pub pool_sizes: Vec<u64>,
    /// Fitted characteristic vector per source.
    pub probs: Vec<CharacteristicVector>,
    /// MSE between analytical and measured dedup ratios.
    pub mse: f64,
    /// Mean relative error (the paper's "< 4 %" metric).
    pub mean_rel_error: f64,
    /// Coordinate-descent iterations used.
    pub iterations: usize,
}

impl FittedModel {
    /// Builds a [`Snod2Instance`] from this fit plus runtime parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::model::InstanceError`] for inconsistent parts.
    pub fn to_instance(
        &self,
        rates: Vec<f64>,
        costs: Vec<Vec<f64>>,
        alpha: f64,
        gamma: usize,
        horizon: f64,
    ) -> Result<Snod2Instance, crate::model::InstanceError> {
        Snod2Instance::new(
            self.pool_sizes.clone(),
            rates,
            self.probs.clone(),
            costs,
            alpha,
            gamma,
            horizon,
        )
    }
}

/// Configuration for the Algorithm 1 search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Number of chunk pools `K` to fit (the paper's validation uses 3).
    pub pools: usize,
    /// Upper bound on pool sizes (the paper searches to 200 000).
    pub max_pool_size: u64,
    /// Stop when the MSE drops below this threshold.
    pub mse_threshold: f64,
    /// Maximum coordinate-descent sweeps per start.
    pub max_iterations: usize,
    /// Number of random restarts (cold start only).
    pub restarts: usize,
    /// RNG seed for restart initialization.
    pub seed: u64,
}

impl Default for EstimatorConfig {
    /// `K = 3` pools of at most 200 000 chunks — the paper's Fig. 2
    /// search space (its reported MSE stays below 0.3; we stop at 0.02).
    fn default() -> Self {
        EstimatorConfig {
            pools: 3,
            max_pool_size: 200_000,
            mse_threshold: 0.001,
            max_iterations: 120,
            restarts: 8,
            seed: 0xEFDE,
        }
    }
}

/// The Algorithm 1 estimator.
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    config: EstimatorConfig,
}

/// Internal search state: log-space pool sizes + per-source weight
/// vectors (normalized to probabilities on evaluation).
#[derive(Debug, Clone)]
struct Params {
    log_sizes: Vec<f64>,
    weights: Vec<Vec<f64>>,
}

impl Params {
    fn pool_sizes(&self, max: u64) -> Vec<u64> {
        self.log_sizes
            .iter()
            .map(|l| (l.exp().round() as u64).clamp(1, max))
            .collect()
    }

    fn probs(&self) -> Vec<CharacteristicVector> {
        self.weights
            .iter()
            .map(|w| {
                CharacteristicVector::from_weights(w.clone())
                    // simlint::allow(D003): descend() projects weights onto the strictly positive simplex
                    .expect("weights kept strictly positive")
            })
            .collect()
    }
}

impl Estimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Estimator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Fits the model to ground truth from a cold start (multi-start
    /// coordinate descent).
    pub fn fit(&self, truth: &GroundTruth) -> FittedModel {
        let n = truth.sample_chunks.len();
        let k = self.config.pools;
        let rng = DetRng::new(self.config.seed).substream("estimator");
        let mut best: Option<(Params, f64, usize)> = None;

        for restart in 0..self.config.restarts.max(1) {
            let mut sub = rng.substream_idx("restart", restart as u64);
            let avg_chunks =
                truth.sample_chunks.iter().sum::<f64>() / truth.sample_chunks.len() as f64;
            let init = Params {
                // Seed pool sizes around the sample scale: a shared pool
                // near the per-source chunk count, plus spread.
                log_sizes: (0..k)
                    .map(|i| {
                        let scale = avg_chunks.max(4.0) * (1.0 + 3.0 * i as f64);
                        (scale * sub.range_f64(0.5, 2.0)).ln()
                    })
                    .collect(),
                weights: (0..n)
                    .map(|_| (0..k).map(|_| sub.range_f64(0.05, 1.0)).collect())
                    .collect(),
            };
            let (params, err, iters) = self.descend(truth, init);
            match &best {
                Some((_, b, _)) if *b <= err => {}
                _ => best = Some((params, err, iters)),
            }
            // simlint::allow(D003): the match directly above always sets `best`
            if best.as_ref().expect("just set").1 < self.config.mse_threshold {
                break;
            }
        }

        // simlint::allow(D003): EstimatorConfig validation guarantees restarts >= 1
        let (params, final_mse, iterations) = best.expect("at least one restart ran");
        self.finish(truth, params, final_mse, iterations)
    }

    /// Algorithm 1's outer loop over the number of chunk pools: fits
    /// with each `K` in `k_range` and returns the best model by MSE,
    /// preferring smaller `K` on near-ties (an Occam margin of 5 %
    /// guards against overfitting with extra pools).
    ///
    /// The search's acceptance bound is deliberately an order of
    /// magnitude tighter than the per-fit [`EstimatorConfig::mse_threshold`]:
    /// with `n` sources there are only `2^n - 1` probe subsets, so a
    /// small-`K` model can interpolate the measurements without having
    /// resolved the true pool structure. Stopping therefore requires
    /// both the tightened bound and at least two candidate pool counts
    /// tried, and while the incumbent is still above the bound any
    /// strict MSE improvement advances the search — the Occam margin
    /// only arbitrates between fits that are already adequate.
    ///
    /// # Panics
    ///
    /// Panics when `k_range` is empty.
    pub fn fit_search_k(
        &self,
        truth: &GroundTruth,
        k_range: std::ops::RangeInclusive<usize>,
    ) -> FittedModel {
        assert!(!k_range.is_empty(), "empty K range");
        let accept = self.config.mse_threshold * 0.1;
        let mut best: Option<FittedModel> = None;
        let mut tried = 0usize;
        for k in k_range {
            let est = Estimator::new(EstimatorConfig {
                pools: k,
                ..self.config
            });
            let mut fitted = est.fit(truth);
            // Nested-model warm start: a (K+1)-pool model strictly
            // contains the incumbent (pad with a near-zero-weight pool),
            // so descending from the incumbent's parameters guards the
            // search against cold starts that cannot match a
            // well-converged smaller model.
            if let Some(prev) = &best {
                if prev.pool_sizes.len() < k {
                    let warm = est.fit_warm_padded(truth, prev, k);
                    if warm.mse < fitted.mse {
                        fitted = warm;
                    }
                }
            }
            tried += 1;
            best = Some(match best {
                None => fitted,
                // Incumbent not yet adequate: any strict improvement wins.
                Some(prev) if prev.mse >= accept && fitted.mse < prev.mse => fitted,
                // Both contenders adequate: extra pools must pay ≥ 5 %.
                Some(prev) if fitted.mse < prev.mse * 0.95 => fitted,
                Some(prev) => prev,
            });
            // simlint::allow(D003): the match directly above always sets `best`
            let incumbent = best.as_ref().expect("just set");
            if tried >= 2 && incumbent.mse < accept {
                break;
            }
        }
        // simlint::allow(D003): the caller passes a non-empty K range
        best.expect("at least one K tried")
    }

    /// Warm start from `previous`, padded out to `pools` pools with
    /// near-zero-weight entries so the init predicts (almost) exactly
    /// what `previous` predicts. Used by [`Self::fit_search_k`] to make
    /// the best MSE non-increasing in `K`.
    fn fit_warm_padded(
        &self,
        truth: &GroundTruth,
        previous: &FittedModel,
        pools: usize,
    ) -> FittedModel {
        let max_log = (self.config.max_pool_size as f64).ln();
        let mut log_sizes: Vec<f64> = previous
            .pool_sizes
            .iter()
            .map(|&s| (s as f64).ln())
            .collect();
        let mut weights: Vec<Vec<f64>> = previous
            .probs
            .iter()
            .map(|p| p.as_slice().iter().map(|&x| x.max(1e-4)).collect())
            .collect();
        while log_sizes.len() < pools {
            let largest = log_sizes.iter().cloned().fold(0.0f64, f64::max);
            log_sizes.push((largest + std::f64::consts::LN_2).min(max_log));
            for w in &mut weights {
                w.push(1e-4);
            }
        }
        let (params, final_mse, iterations) = self.descend(truth, Params { log_sizes, weights });
        self.finish(truth, params, final_mse, iterations)
    }

    /// Fits starting from a previous slot's model — the warm-started
    /// re-estimation of Fig. 3.
    pub fn fit_warm(&self, truth: &GroundTruth, previous: &FittedModel) -> FittedModel {
        let init = Params {
            log_sizes: previous
                .pool_sizes
                .iter()
                .map(|&s| (s as f64).ln())
                .collect(),
            weights: previous
                .probs
                .iter()
                .map(|p| p.as_slice().iter().map(|&x| x.max(1e-4)).collect())
                .collect(),
        };
        let (params, final_mse, iterations) = self.descend(truth, init);
        self.finish(truth, params, final_mse, iterations)
    }

    fn finish(
        &self,
        truth: &GroundTruth,
        params: Params,
        final_mse: f64,
        iterations: usize,
    ) -> FittedModel {
        let pool_sizes = params.pool_sizes(self.config.max_pool_size);
        let probs = params.probs();
        let predicted = predict_all(truth, &pool_sizes, &probs);
        FittedModel {
            mean_rel_error: mean_relative_error(&truth.measured, &predicted),
            mse: final_mse,
            pool_sizes,
            probs,
            iterations,
        }
    }

    /// Coordinate descent with multiplicative pattern steps.
    fn descend(&self, truth: &GroundTruth, mut params: Params) -> (Params, f64, usize) {
        let mut err = self.objective(truth, &params);
        let mut step = 0.5f64;
        let mut iterations = 0;
        for _ in 0..self.config.max_iterations {
            iterations += 1;
            let mut improved = false;
            // Pool sizes (log space).
            for k in 0..params.log_sizes.len() {
                for dir in [1.0, -1.0] {
                    let mut cand = params.clone();
                    cand.log_sizes[k] += dir * step;
                    cand.log_sizes[k] =
                        cand.log_sizes[k].clamp(0.0, (self.config.max_pool_size as f64).ln());
                    let e = self.objective(truth, &cand);
                    if e < err {
                        params = cand;
                        err = e;
                        improved = true;
                    }
                }
            }
            // Source weights (kept positive; probabilities renormalize).
            for i in 0..params.weights.len() {
                for k in 0..params.weights[i].len() {
                    for factor in [1.0 + step, 1.0 / (1.0 + step)] {
                        let mut cand = params.clone();
                        cand.weights[i][k] = (cand.weights[i][k] * factor).clamp(1e-4, 1e4);
                        let e = self.objective(truth, &cand);
                        if e < err {
                            params = cand;
                            err = e;
                            improved = true;
                        }
                    }
                }
            }
            if err < self.config.mse_threshold {
                break;
            }
            if !improved {
                step *= 0.5;
                if step < 1e-3 {
                    break;
                }
            }
        }
        (params, err, iterations)
    }

    fn objective(&self, truth: &GroundTruth, params: &Params) -> f64 {
        let pool_sizes = params.pool_sizes(self.config.max_pool_size);
        let probs = params.probs();
        let predicted = predict_all(truth, &pool_sizes, &probs);
        mse(&truth.measured, &predicted)
    }
}

/// Theorem 1 prediction of the dedup ratio of `subset` under candidate
/// parameters, with `draws[i]` chunks per source.
pub fn predict_ratio(
    subset: &[usize],
    pool_sizes: &[u64],
    probs: &[CharacteristicVector],
    draws: &[f64],
) -> f64 {
    let total: f64 = subset.iter().map(|&i| draws[i]).sum();
    let mut unique = 0.0;
    for (k, &s) in pool_sizes.iter().enumerate() {
        let s = s as f64;
        let mut survive = 1.0;
        for &i in subset {
            let p = probs[i].prob(k);
            if p > 0.0 {
                let frac = (p / s).min(1.0 - 1e-12);
                survive *= (draws[i] * (-frac).ln_1p()).exp();
            }
        }
        unique += s * (1.0 - survive);
    }
    if unique <= 0.0 {
        1.0
    } else {
        total / unique
    }
}

fn predict_all(
    truth: &GroundTruth,
    pool_sizes: &[u64],
    probs: &[CharacteristicVector],
) -> Vec<f64> {
    truth
        .subsets
        .iter()
        .map(|set| predict_ratio(set, pool_sizes, probs, &truth.sample_chunks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_chunking::FixedChunker;
    use ef_datagen::{GenerativeModel, SourceSpec};

    /// Build ground truth from bytes generated by a *known* model, so the
    /// estimator's recovered parameters can be scored.
    fn truth_from_model(model: &GenerativeModel, chunks_per_sample: usize) -> GroundTruth {
        let mut rng = DetRng::new(99).substream("estimator-test");
        let files: Vec<Vec<u8>> = (0..model.source_count())
            .map(|i| model.generate_stream(i, chunks_per_sample, &mut rng))
            .collect();
        let chunker = FixedChunker::new(model.chunk_size()).unwrap();
        GroundTruth::measure(&chunker, &files)
    }

    fn known_model() -> GenerativeModel {
        let v1 = CharacteristicVector::new(vec![0.6, 0.2, 0.2]).unwrap();
        let v2 = CharacteristicVector::new(vec![0.5, 0.3, 0.2]).unwrap();
        GenerativeModel::new(
            vec![300, 800, 50_000],
            256,
            vec![SourceSpec::new(100.0, v1), SourceSpec::new(100.0, v2)],
        )
        .unwrap()
    }

    #[test]
    fn ground_truth_probe_structure() {
        let chunker = FixedChunker::new(64).unwrap();
        let files = vec![vec![1u8; 640], vec![2u8; 640], vec![3u8; 640]];
        let gt = GroundTruth::measure(&chunker, &files);
        // 3 singletons + 3 pairs + full set.
        assert_eq!(gt.subsets.len(), 7);
        assert_eq!(gt.measured.len(), 7);
        assert_eq!(gt.sample_chunks, vec![10.0, 10.0, 10.0]);
        // Constant-filled files dedup to a single chunk: ratio = 10.
        assert!((gt.measured[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn predict_ratio_matches_instance_math() {
        let model = known_model();
        let inst = Snod2Instance::from_parts(
            &model,
            vec![vec![0.0; 2]; 2],
            0.1,
            1,
            10.0, // horizon 10 at rate 100 = 1000 draws
        )
        .unwrap();
        let draws = vec![1000.0, 1000.0];
        let probs: Vec<CharacteristicVector> =
            model.sources().iter().map(|s| s.probs.clone()).collect();
        for subset in [&[0usize][..], &[1], &[0, 1]] {
            let a = predict_ratio(subset, model.pool_sizes(), &probs, &draws);
            let b = inst.dedup_ratio(subset);
            assert!((a - b).abs() < 1e-9, "{subset:?}: {a} vs {b}");
        }
    }

    #[test]
    fn cold_fit_reaches_paper_error_bound() {
        // The paper's Fig. 2 claim: average estimation error < 4 %.
        let model = known_model();
        let gt = truth_from_model(&model, 600);
        let fitted = Estimator::default().fit(&gt);
        assert!(
            fitted.mean_rel_error < 0.04,
            "error {} above the paper's 4% bound (mse {})",
            fitted.mean_rel_error,
            fitted.mse
        );
    }

    #[test]
    fn warm_start_is_no_worse_and_faster() {
        // Fig. 3: successive slots start from the previous fit and
        // converge quickly with comparable or better error.
        let model = known_model();
        let gt1 = truth_from_model(&model, 600);
        let est = Estimator::default();
        let first = est.fit(&gt1);

        // Slightly different sample from the same sources (a later slot).
        let mut rng = DetRng::new(123).substream("slot2");
        let files: Vec<Vec<u8>> = (0..model.source_count())
            .map(|i| model.generate_stream(i, 500, &mut rng))
            .collect();
        let chunker = FixedChunker::new(model.chunk_size()).unwrap();
        let gt2 = GroundTruth::measure(&chunker, &files);

        let warm = est.fit_warm(&gt2, &first);
        assert!(
            warm.mean_rel_error < 0.05,
            "warm error {}",
            warm.mean_rel_error
        );
        // Warm start runs a single descent; its iteration count must not
        // exceed one cold-start descent budget.
        assert!(warm.iterations <= est.config().max_iterations);
    }

    #[test]
    fn fitted_model_converts_to_instance() {
        let model = known_model();
        let gt = truth_from_model(&model, 300);
        let fitted = Estimator::default().fit(&gt);
        let inst = fitted
            .to_instance(vec![100.0, 100.0], vec![vec![0.0; 2]; 2], 0.1, 2, 10.0)
            .unwrap();
        assert_eq!(inst.node_count(), 2);
        assert_eq!(inst.pool_count(), fitted.pool_sizes.len());
    }

    #[test]
    fn fit_is_deterministic() {
        let model = known_model();
        let gt = truth_from_model(&model, 300);
        let a = Estimator::default().fit(&gt);
        let b = Estimator::default().fit(&gt);
        assert_eq!(a.pool_sizes, b.pool_sizes);
        assert_eq!(a.mse, b.mse);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn measure_rejects_empty_file() {
        let chunker = FixedChunker::new(64).unwrap();
        GroundTruth::measure(&chunker, &[vec![]]);
    }

    #[test]
    fn k_search_finds_adequate_pool_count() {
        // Three sources give 2^3 - 1 = 7 probe subsets, so a K = 1 model
        // (1 size + 3 weights = 4 parameters) is over-determined and
        // cannot interpolate the measurements the way it can with only
        // two sources (3 subsets vs 3 parameters). That makes "the
        // search must move past K = 1" a property of the model class,
        // not of one lucky sample.
        let v1 = CharacteristicVector::new(vec![0.6, 0.2, 0.2]).unwrap();
        let v2 = CharacteristicVector::new(vec![0.5, 0.3, 0.2]).unwrap();
        let v3 = CharacteristicVector::new(vec![0.2, 0.2, 0.6]).unwrap();
        let model = GenerativeModel::new(
            vec![300, 800, 50_000], // the true model has K = 3
            256,
            vec![
                SourceSpec::new(100.0, v1),
                SourceSpec::new(100.0, v2),
                SourceSpec::new(100.0, v3),
            ],
        )
        .unwrap();
        let gt = truth_from_model(&model, 400);
        let fitted = Estimator::default().fit_search_k(&gt, 1..=4);
        assert!(
            fitted.mean_rel_error < 0.05,
            "K-search error {}",
            fitted.mean_rel_error
        );
        // A single pool cannot express three differently-sized overlap
        // structures; the search must have moved past K = 1.
        assert!(fitted.pool_sizes.len() >= 2, "stuck at K=1");
    }
}
