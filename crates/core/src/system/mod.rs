//! The EF-dedup system (paper Sec. IV) and its evaluation baselines.
//!
//! Architecture (Fig. 4): every edge node runs a **Dedup Agent** that
//! splits incoming data into chunks, hashes each chunk, and consults the
//! deduplication index. Under EF-dedup the index of each **D2-ring** lives
//! in a distributed key-value store (`ef-kvstore`) spread over the ring's
//! nodes; only chunks whose hash is new are uploaded to the central
//! cloud. Two baselines from Sec. V-A are implemented alongside:
//!
//! * **Cloud-Only** — raw data is shipped to the central cloud, which
//!   deduplicates there (bottleneck: the constrained WAN uplink),
//! * **Cloud-Assisted** — the index lives in the central cloud; agents
//!   look hashes up remotely over the WAN and upload unique chunks only
//!   (bottleneck: WAN-latency lookups and the shared cloud index).
//!
//! Timing comes from a calibrated steady-state pipeline model
//! ([`run::run_system`]): each agent's per-chunk time is the maximum of
//! its pipeline stages (CPU, index lookup, WAN upload, shared-capacity
//! terms), with the stage values **measured** from an actual run of the
//! chunk streams through the ring indexes — uniqueness, replica locality
//! and lookup costs are real, not assumed. DESIGN.md §4 documents the
//! calibration; the `SimCluster` driver in `ef-kvstore` validates the
//! lookup-latency side of the model.

mod config;
mod metrics;
mod run;
mod workload;

pub use config::SystemConfig;
pub use ef_cloudstore::{DefragPolicy, RestoreStats};
pub use ef_kvstore::{CacheStats, GrayFailureStats};
pub use metrics::{NodeMetrics, RobustnessMetrics, SystemMetrics};
pub use run::{run_system, Strategy};
pub use workload::Workload;
