//! System configuration and calibration constants.

use serde::{Deserialize, Serialize};

/// Calibrated parameters of the Dedup Agent pipeline and its substrate.
///
/// Defaults approximate the paper's testbed (4-VCPU/8 GB edge VMs,
/// 8-VCPU/15 GB cloud VMs) at the granularity the steady-state model
/// needs. Absolute throughput differs from the authors' hardware; the
/// experiments reproduce relative behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Bytes per chunk (the equal-size chunk of the paper's model).
    pub chunk_size: usize,
    /// Chunk-hash replication factor γ inside a ring (testbed: 2).
    pub replication_factor: usize,
    /// Outstanding index lookups an agent keeps in flight. High
    /// concurrency hides most lookup latency, as the Cassandra client in
    /// the prototype does; residual per-chunk latency is `RTT / depth`.
    pub lookup_concurrency: usize,
    /// Edge-node chunking+hashing throughput (bytes/second).
    pub edge_cpu_bw: f64,
    /// Cloud-node processing throughput (bytes/second) for Cloud-Only
    /// server-side dedup.
    pub cloud_cpu_bw: f64,
    /// CPU time an index owner spends serving one remote hash lookup
    /// (seconds) — bounds the shared cloud index under Cloud-Assisted and
    /// charges ring peers under EF-dedup.
    pub index_service_secs: f64,
    /// Bytes on the wire per hash lookup round trip (request + response).
    pub lookup_wire_bytes: u64,
    /// TCP congestion-window proxy per upload flow (bytes): long-RTT
    /// paths cap a flow's throughput at `window / RTT`.
    pub tcp_window_bytes: f64,
    /// Parallel upload flows per agent.
    pub upload_streams: usize,
    /// Per-node fingerprint-cache capacity in entries; 0 disables the
    /// cache (the paper-testbed default, keeping the headline experiments
    /// cache-free and directly comparable to earlier runs). A cache hit
    /// confirms a duplicate locally, skipping the ring lookup; see the
    /// DESIGN.md hot-path section for the one-sided soundness argument.
    #[serde(default)]
    pub cache_capacity: usize,
    /// LRU shards per node's fingerprint cache (bounds eviction scan
    /// domains and mirrors the concurrent layout a real agent would use).
    #[serde(default = "default_cache_shards")]
    pub cache_shards: usize,
    /// Second-sight cache admission: fingerprints enter the cache only on
    /// their second sighting, shielding warm entries from one-hit-wonder
    /// churn. Ignored when the cache is disabled; off by default so
    /// earlier cached runs stay comparable.
    #[serde(default)]
    pub cache_second_sight: bool,
    /// Container capacity in bytes for the restore-path layout model:
    /// unique chunks append into fixed-capacity containers in arrival
    /// order, and `SystemMetrics::restore` measures how many containers
    /// a per-node restore touches (DESIGN.md §18).
    #[serde(default = "default_container_bytes")]
    pub container_bytes: usize,
    /// Duplicate-rewrite policy of the restore-path layout model:
    /// [`ef_cloudstore::DefragPolicy::Off`] (default) keeps maximum
    /// dedup; `CapRewrite { window }` rewrites stale duplicates to the
    /// write frontier, trading stored bytes for restore locality.
    #[serde(default)]
    pub defrag: ef_cloudstore::DefragPolicy,
}

fn default_cache_shards() -> usize {
    8
}

fn default_container_bytes() -> usize {
    // 64 chunks of the default 4 KiB — small enough that fragmentation
    // is visible at test scale, large enough to amortize a seek.
    256 * 1024
}

impl SystemConfig {
    /// The paper-testbed calibration (see DESIGN.md §4).
    pub fn paper_testbed() -> Self {
        SystemConfig {
            chunk_size: 4096,
            replication_factor: 2,
            lookup_concurrency: 384,
            edge_cpu_bw: 200e6,
            cloud_cpu_bw: 800e6,
            index_service_secs: 15e-6,
            lookup_wire_bytes: 80,
            tcp_window_bytes: 512.0 * 1024.0,
            upload_streams: 4,
            cache_capacity: 0,
            cache_shards: default_cache_shards(),
            cache_second_sight: false,
            container_bytes: default_container_bytes(),
            defrag: ef_cloudstore::DefragPolicy::Off,
        }
    }

    /// The paper-testbed calibration with the fingerprint cache enabled
    /// at `capacity` entries per node.
    pub fn with_cache(capacity: usize) -> Self {
        SystemConfig {
            cache_capacity: capacity,
            ..Self::paper_testbed()
        }
    }

    /// The paper-testbed calibration with capped-rewrite defrag enabled
    /// at `window` containers behind the write frontier.
    pub fn with_defrag(window: u32) -> Self {
        SystemConfig {
            defrag: ef_cloudstore::DefragPolicy::CapRewrite { window },
            ..Self::paper_testbed()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn validate(&self) {
        assert!(self.chunk_size > 0, "chunk size must be positive");
        assert!(self.replication_factor > 0, "gamma must be positive");
        assert!(self.lookup_concurrency > 0, "need lookup concurrency");
        assert!(
            self.edge_cpu_bw > 0.0,
            "edge cpu bandwidth must be positive"
        );
        assert!(
            self.cloud_cpu_bw > 0.0,
            "cloud cpu bandwidth must be positive"
        );
        assert!(
            self.index_service_secs > 0.0,
            "index service time must be positive"
        );
        assert!(self.tcp_window_bytes > 0.0, "tcp window must be positive");
        assert!(self.upload_streams > 0, "need at least one upload stream");
        assert!(
            self.cache_capacity == 0 || self.cache_shards > 0,
            "an enabled cache needs at least one shard"
        );
        assert!(
            self.container_bytes > 0,
            "container capacity must be positive"
        );
    }
}

impl Default for SystemConfig {
    /// The paper-testbed calibration.
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SystemConfig::default().validate();
        assert_eq!(SystemConfig::default(), SystemConfig::paper_testbed());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_size_rejected() {
        SystemConfig {
            chunk_size: 0,
            ..SystemConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn zero_gamma_rejected() {
        SystemConfig {
            replication_factor: 0,
            ..SystemConfig::default()
        }
        .validate();
    }

    #[test]
    fn cache_defaults_off_and_with_cache_enables() {
        assert_eq!(SystemConfig::default().cache_capacity, 0);
        let cfg = SystemConfig::with_cache(4096);
        cfg.validate();
        assert_eq!(cfg.cache_capacity, 4096);
        assert!(cfg.cache_shards > 0);
    }

    #[test]
    fn defrag_defaults_off_and_with_defrag_enables() {
        assert_eq!(
            SystemConfig::default().defrag,
            ef_cloudstore::DefragPolicy::Off
        );
        let cfg = SystemConfig::with_defrag(2);
        cfg.validate();
        assert_eq!(
            cfg.defrag,
            ef_cloudstore::DefragPolicy::CapRewrite { window: 2 }
        );
        assert!(cfg.container_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "container capacity")]
    fn zero_container_bytes_rejected() {
        SystemConfig {
            container_bytes: 0,
            ..SystemConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn enabled_cache_needs_shards() {
        SystemConfig {
            cache_capacity: 100,
            cache_shards: 0,
            ..SystemConfig::default()
        }
        .validate();
    }
}
