//! The experiment runner: streams workloads through the dedup strategies
//! and prices them with the steady-state pipeline model.

use crate::partition::Partition;
use crate::system::config::SystemConfig;
use crate::system::metrics::{NodeMetrics, RobustnessMetrics, SystemMetrics};
use crate::system::workload::Workload;
use bytes::Bytes;
use ef_cloudstore::{restore_profile, ContainerLayout, RestoreAccountant, RestoreStats};
use ef_kvstore::{CacheStats, ClusterConfig, Consistency, FingerprintCache, LocalCluster};
use ef_netsim::{Network, NodeId};
use std::collections::BTreeSet;

/// Which deduplication architecture to run (paper Sec. V-A).
#[derive(Debug, Clone)]
pub enum Strategy {
    /// EF-dedup: D2-rings over the edge nodes per the given partition
    /// (workload-node indices), each ring's index in its own distributed
    /// key-value store; unique chunks uploaded to the cloud.
    Smart(Partition),
    /// Ship raw data to the central cloud and deduplicate there.
    CloudOnly,
    /// Keep the index in the central cloud; edge agents look hashes up
    /// over the WAN and upload unique chunks only.
    CloudAssisted,
}

impl Strategy {
    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Smart(_) => "SMART",
            Strategy::CloudOnly => "Cloud-Only",
            Strategy::CloudAssisted => "Cloud-Assisted",
        }
    }
}

/// Runs `workload` on `network` under `strategy`.
///
/// Workload node `i` executes on the `i`-th edge node of the topology.
/// Uniqueness, replica locality and lookup costs are measured by actually
/// streaming the chunk hashes through the ring key-value stores (for
/// EF-dedup) or the cloud index (for the baselines); timing then follows
/// the steady-state pipeline model described in [`super`].
///
/// # Panics
///
/// Panics when the topology has fewer edge nodes than the workload, has
/// no cloud site, or (for [`Strategy::Smart`]) the partition does not
/// cover the workload's nodes.
pub fn run_system(
    network: &Network,
    workload: &Workload,
    strategy: &Strategy,
    config: &SystemConfig,
) -> SystemMetrics {
    config.validate();
    let n = workload.node_count();
    let edge_ids = network.topology().edge_nodes();
    assert!(
        edge_ids.len() >= n,
        "topology has {} edge nodes, workload needs {n}",
        edge_ids.len()
    );
    let cloud_ids = network.topology().cloud_nodes();
    assert!(!cloud_ids.is_empty(), "topology needs a central cloud site");

    let chunk = workload.chunk_size() as f64;
    let chunks: Vec<u64> = (0..n).map(|i| workload.stream(i).len() as u64).collect();

    // ---- Measurement pass -------------------------------------------------
    // Per-node accumulators.
    let mut unique = vec![0u64; n];
    let mut lookup_ms_total = vec![0.0f64; n];
    let mut local_lookups = vec![0u64; n];
    let mut remote_served = vec![0u64; n]; // lookups this node served for peers
    let mut cache_stats = CacheStats::default();
    let chunk_bytes = workload.chunk_size();
    let (scope_unique_total, restore): (u64, RestoreStats) = match strategy {
        Strategy::Smart(partition) => {
            partition
                .validate(n)
                // simlint::allow(D003): documented entry precondition of the experiment runner
                .expect("partition must cover the workload nodes");
            // One distributed KV store per D2-ring.
            let mut clusters: Vec<LocalCluster> = partition
                .rings()
                .iter()
                .map(|ring| {
                    LocalCluster::new(
                        ring.iter().map(|&i| edge_ids[i]).collect(),
                        ClusterConfig {
                            replication_factor: config.replication_factor,
                            consistency: Consistency::One,
                            ..ClusterConfig::default()
                        },
                    )
                })
                .collect();
            let ring_of: Vec<usize> = (0..n)
                // simlint::allow(D003): validate(n) above proved every node is covered
                .map(|i| partition.ring_of(i).expect("covered"))
                .collect();

            // One container layout per ring: unique chunks append at
            // the ring's write frontier, duplicates go through the
            // configured defrag policy (a no-op under the default
            // `DefragPolicy::Off`).
            let mut layouts: Vec<ContainerLayout> = partition
                .rings()
                .iter()
                .map(|_| ContainerLayout::new(config.container_bytes))
                .collect();

            // Per-agent fingerprint caches in front of the ring index
            // (capacity 0 = disabled). A hit means this agent has already
            // seen the ring confirm the fingerprint durably indexed, so
            // the chunk is a duplicate — answered locally, no ring RTT,
            // no index-service CPU on any peer. Misses fall through to
            // the ring unchanged, so dedup verdicts are identical with
            // the cache on or off.
            let cache_on = config.cache_capacity > 0;
            let per_shard = config
                .cache_capacity
                .div_ceil(config.cache_shards.max(1))
                .max(1);
            let mut caches: Vec<FingerprintCache> = (0..n)
                .map(|_| {
                    let cache = FingerprintCache::new(config.cache_shards, per_shard);
                    if config.cache_second_sight {
                        cache.with_second_sight()
                    } else {
                        cache
                    }
                })
                .collect();

            // Round-robin across nodes: parallel agents make progress
            // together, so cross-node duplicates are detected fairly.
            let max_len = chunks.iter().copied().max().unwrap_or(0) as usize;
            for pos in 0..max_len {
                for node in 0..n {
                    let stream = workload.stream(node);
                    let Some(hash) = stream.get(pos) else {
                        continue;
                    };
                    let me = edge_ids[node];
                    let cluster = &mut clusters[ring_of[node]];
                    let key = hash.as_bytes();
                    if cache_on && caches[node].contains(key) {
                        // Duplicate confirmed locally: still a defrag
                        // opportunity for the layout model.
                        layouts[ring_of[node]].on_duplicate(hash, chunk_bytes, config.defrag);
                        local_lookups[node] += 1;
                        continue;
                    }
                    let replicas = cluster.ring().replicas(key, config.replication_factor);
                    if replicas.contains(&me) {
                        local_lookups[node] += 1;
                        remote_served[node] += 1; // self-serve costs index CPU too
                    } else {
                        let server = replicas
                            .iter()
                            .copied()
                            .min_by(|a, b| network.rtt(me, *a).cmp(&network.rtt(me, *b)))
                            // simlint::allow(D003): replicas() returns at least the key's home node
                            .expect("replica set non-empty");
                        lookup_ms_total[node] += network.rtt(me, server).as_millis_f64();
                        if let Some(srv_idx) = edge_ids.iter().position(|&id| id == server) {
                            remote_served[srv_idx] += 1;
                        }
                    }
                    let is_new = cluster
                        .check_and_insert(me, key, Bytes::from_static(&[1]))
                        // simlint::allow(D003): the instant-delivery cluster has no fault plan, so ops cannot fail
                        .expect("local cluster always available");
                    if is_new {
                        unique[node] += 1;
                        layouts[ring_of[node]].place(*hash, chunk_bytes);
                    } else {
                        layouts[ring_of[node]].on_duplicate(hash, chunk_bytes, config.defrag);
                    }
                    if cache_on {
                        // Either verdict proves the fingerprint is now
                        // durably present in the ring index.
                        caches[node].insert(Bytes::copy_from_slice(key));
                    }
                }
            }
            for cache in &caches {
                cache_stats.absorb(&cache.stats());
            }

            // Restore pass: replay each node's stream as one logical
            // restore against its ring's layout. The serving node per
            // chunk mirrors the lookup path — a local replica when the
            // reader holds one, otherwise the RTT-nearest replica.
            let mut accountant = RestoreAccountant::new();
            for node in 0..n {
                let stream = workload.stream(node);
                if stream.is_empty() {
                    continue;
                }
                let layout = &layouts[ring_of[node]];
                let cluster = &clusters[ring_of[node]];
                let me = edge_ids[node];
                let mut servers: BTreeSet<NodeId> = BTreeSet::new();
                for hash in stream {
                    let replicas = cluster
                        .ring()
                        .replicas(hash.as_bytes(), config.replication_factor);
                    let server = if replicas.contains(&me) {
                        me
                    } else {
                        replicas
                            .iter()
                            .copied()
                            .min_by(|a, b| network.rtt(me, *a).cmp(&network.rtt(me, *b)))
                            // simlint::allow(D003): replicas() returns at least the key's home node
                            .expect("replica set non-empty")
                    };
                    servers.insert(server);
                }
                accountant.record(&restore_profile(layout, stream), servers.len() as u64);
            }
            for layout in &layouts {
                accountant.absorb_layout(layout);
            }
            (
                clusters.iter().map(|c| c.distinct_keys() as u64).sum(),
                accountant.finish(),
            )
        }
        Strategy::CloudAssisted => {
            let mut index: BTreeSet<[u8; 32]> = BTreeSet::new();
            let mut layout = ContainerLayout::new(config.container_bytes);
            let max_len = chunks.iter().copied().max().unwrap_or(0) as usize;
            for pos in 0..max_len {
                for node in 0..n {
                    let Some(hash) = workload.stream(node).get(pos) else {
                        continue;
                    };
                    let me = edge_ids[node];
                    let cloud = nearest_cloud(network, me, &cloud_ids);
                    lookup_ms_total[node] += network.rtt(me, cloud).as_millis_f64();
                    if index.insert(*hash.as_bytes()) {
                        unique[node] += 1;
                        layout.place(*hash, chunk_bytes);
                    } else {
                        layout.on_duplicate(hash, chunk_bytes, config.defrag);
                    }
                }
            }
            (
                index.len() as u64,
                cloud_restore_stats(workload, n, &layout),
            )
        }
        Strategy::CloudOnly => {
            // No edge lookups; dedup happens at the cloud.
            let mut index: BTreeSet<[u8; 32]> = BTreeSet::new();
            let mut layout = ContainerLayout::new(config.container_bytes);
            for (node, node_unique) in unique.iter_mut().enumerate() {
                for hash in workload.stream(node) {
                    if index.insert(*hash.as_bytes()) {
                        *node_unique += 1;
                        layout.place(*hash, chunk_bytes);
                    } else {
                        layout.on_duplicate(hash, chunk_bytes, config.defrag);
                    }
                }
            }
            (
                index.len() as u64,
                cloud_restore_stats(workload, n, &layout),
            )
        }
    };

    // ---- Timing pass ------------------------------------------------------
    let cloud_count = cloud_ids.len() as f64;
    let mut nodes = Vec::with_capacity(n);
    let mut makespan: f64 = 0.0;
    for node in 0..n {
        let me = edge_ids[node];
        let c = chunks[node].max(1) as f64;
        let uf = unique[node] as f64 / c;
        let avg_lookup_ms = lookup_ms_total[node] / c;
        let cloud = nearest_cloud(network, me, &cloud_ids);
        let wan = network.link(me, cloud);
        let wan_rtt_secs = network.rtt(me, cloud).as_secs_f64();
        // Per-flow TCP-window cap aggregated over parallel streams.
        let wan_eff_bw = (wan.bandwidth_bps / 8.0)
            .min(config.tcp_window_bytes * config.upload_streams as f64 / wan_rtt_secs.max(1e-9));

        let t_chunk = match strategy {
            Strategy::Smart(_) => {
                let serve_per_chunk = remote_served[node] as f64 / c;
                let cpu = chunk / config.edge_cpu_bw + serve_per_chunk * config.index_service_secs;
                let lookup = avg_lookup_ms / 1e3 / config.lookup_concurrency as f64;
                let upload = uf * (chunk + config.lookup_wire_bytes as f64) / wan_eff_bw;
                cpu.max(lookup).max(upload)
            }
            Strategy::CloudAssisted => {
                let cpu = chunk / config.edge_cpu_bw;
                let lookup = avg_lookup_ms / 1e3 / config.lookup_concurrency as f64;
                // The shared cloud index serves every agent's lookups.
                let capacity = n as f64 * config.index_service_secs / cloud_count;
                // Lookup wire + unique uploads share the WAN uplink.
                let uplink_bytes = uf * chunk + 2.0 * config.lookup_wire_bytes as f64;
                let upload = uplink_bytes / wan_eff_bw;
                cpu.max(lookup).max(capacity).max(upload)
            }
            Strategy::CloudOnly => {
                // Everything crosses the WAN; the cloud dedups on arrival.
                let upload = chunk / wan_eff_bw;
                let cloud_ingest = n as f64 * chunk / (cloud_count * config.cloud_cpu_bw);
                upload.max(cloud_ingest)
            }
        };

        let throughput = chunk / t_chunk / 1e6;
        makespan = makespan.max(c * t_chunk);
        nodes.push(NodeMetrics {
            chunks: chunks[node],
            unique_chunks: unique[node],
            avg_lookup_ms,
            local_lookup_fraction: local_lookups[node] as f64 / c,
            chunk_time_secs: t_chunk,
            throughput_mbps: throughput,
        });
    }

    let total_chunks = workload.total_chunks();
    let total_bytes = workload.total_bytes();
    let wan_bytes = match strategy {
        Strategy::CloudOnly => total_bytes,
        Strategy::Smart(_) | Strategy::CloudAssisted => {
            scope_unique_total * workload.chunk_size() as u64
                + total_chunks * config.lookup_wire_bytes
        }
    };
    let network_cost_ms: f64 = lookup_ms_total.iter().sum();
    let mean_node_throughput = nodes.iter().map(|m| m.throughput_mbps).sum::<f64>() / n as f64;

    SystemMetrics {
        strategy: strategy.label().to_string(),
        total_input_bytes: total_bytes,
        total_chunks,
        unique_chunks: scope_unique_total,
        dedup_ratio: total_chunks as f64 / scope_unique_total.max(1) as f64,
        wan_bytes,
        storage_bytes: scope_unique_total * workload.chunk_size() as u64,
        network_cost_ms,
        makespan_secs: makespan,
        aggregate_throughput_mbps: total_bytes as f64 / makespan.max(1e-12) / 1e6,
        mean_node_throughput_mbps: mean_node_throughput,
        // The measurement pass runs over instant clusters with no fault
        // injection; chaos experiments snapshot real counters via
        // `RobustnessMetrics::from_sim`.
        robustness: RobustnessMetrics::default(),
        cache: cache_stats,
        restore,
        nodes,
    }
}

/// Restore accounting for the cloud baselines: one logical restore per
/// node stream against the single cloud-side layout, everything served
/// by the one cloud endpoint.
fn cloud_restore_stats(workload: &Workload, n: usize, layout: &ContainerLayout) -> RestoreStats {
    let mut accountant = RestoreAccountant::new();
    for node in 0..n {
        let stream = workload.stream(node);
        if stream.is_empty() {
            continue;
        }
        accountant.record(&restore_profile(layout, stream), 1);
    }
    accountant.absorb_layout(layout);
    accountant.finish()
}

fn nearest_cloud(network: &Network, from: NodeId, cloud: &[NodeId]) -> NodeId {
    cloud
        .iter()
        .copied()
        .min_by(|a, b| network.rtt(from, *a).cmp(&network.rtt(from, *b)))
        // simlint::allow(D003): topologies are built with at least one cloud node
        .expect("cloud site non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_datagen::datasets;
    use ef_netsim::{NetworkConfig, TopologyBuilder};

    /// The paper's testbed: 10 edge clouds × 2 nodes + 4 cloud VMs.
    fn testbed() -> Network {
        let topo = TopologyBuilder::new()
            .edge_sites(10, 2)
            .cloud_site(4)
            .build();
        Network::new(topo, NetworkConfig::paper_testbed())
    }

    fn smart_partition(n: usize, rings: usize) -> Partition {
        // Contiguous equal rings over workload indices (node i and i+1
        // are co-located pairs, which also share dataset groups).
        let per = n.div_ceil(rings);
        let mut out = Vec::new();
        for r in 0..rings {
            let lo = r * per;
            if lo >= n {
                break;
            }
            out.push(((lo)..((lo + per).min(n))).collect());
        }
        Partition::new(out).unwrap()
    }

    fn smart_greedy_partition(
        ds: &ef_datagen::datasets::Dataset,
        net: &Network,
        rings: usize,
    ) -> Partition {
        use crate::partition::{Partitioner, SmartGreedy};
        let edge = net.topology().edge_nodes();
        let n = ds.model().source_count();
        let inst = crate::model::Snod2Instance::from_parts(
            ds.model(),
            net.cost_matrix(&edge[..n]),
            0.1,
            2,
            10.0,
        )
        .unwrap();
        SmartGreedy.partition(&inst, rings)
    }

    fn run_all(nodes: usize, chunks: usize) -> (SystemMetrics, SystemMetrics, SystemMetrics) {
        let net = testbed();
        let ds = datasets::accelerometer(nodes, 42);
        let w = Workload::from_dataset(&ds, nodes, chunks, 0);
        let cfg = SystemConfig::paper_testbed();
        let partition = smart_greedy_partition(&ds, &net, 5);
        let smart = run_system(&net, &w, &Strategy::Smart(partition), &cfg);
        let ca = run_system(&net, &w, &Strategy::CloudAssisted, &cfg);
        let co = run_system(&net, &w, &Strategy::CloudOnly, &cfg);
        (smart, ca, co)
    }

    #[test]
    fn smart_outperforms_cloud_baselines_at_testbed_scale() {
        // The Fig. 5(a) headline at 20 nodes.
        let (smart, ca, co) = run_all(20, 2_000);
        assert!(
            smart.aggregate_throughput_mbps > ca.aggregate_throughput_mbps,
            "SMART {} <= Cloud-Assisted {}",
            smart.aggregate_throughput_mbps,
            ca.aggregate_throughput_mbps
        );
        assert!(
            smart.aggregate_throughput_mbps > co.aggregate_throughput_mbps,
            "SMART {} <= Cloud-Only {}",
            smart.aggregate_throughput_mbps,
            co.aggregate_throughput_mbps
        );
        // And the factor is in the paper's ballpark (tens of percent to
        // ~2x, not orders of magnitude).
        let vs_ca = smart.aggregate_throughput_mbps / ca.aggregate_throughput_mbps;
        let vs_co = smart.aggregate_throughput_mbps / co.aggregate_throughput_mbps;
        assert!((1.05..4.0).contains(&vs_ca), "vs CA factor {vs_ca}");
        assert!((1.05..4.0).contains(&vs_co), "vs CO factor {vs_co}");
    }

    #[test]
    fn cloud_strategies_dedup_at_least_as_well_as_rings() {
        // Fig. 5(c): global dedup is an upper bound on ring dedup.
        let (smart, ca, co) = run_all(12, 500);
        assert!(ca.dedup_ratio >= smart.dedup_ratio - 1e-9);
        assert!(co.dedup_ratio >= smart.dedup_ratio - 1e-9);
        assert!((ca.dedup_ratio - co.dedup_ratio).abs() < 1e-9);
        // But EF-dedup still finds real redundancy.
        assert!(
            smart.dedup_ratio > 1.1,
            "ring dedup ratio {}",
            smart.dedup_ratio
        );
    }

    #[test]
    fn cloud_only_ships_everything() {
        let (smart, _, co) = run_all(8, 300);
        assert_eq!(co.wan_bytes, co.total_input_bytes);
        assert!(smart.wan_bytes < smart.total_input_bytes);
        assert_eq!(co.network_cost_ms, 0.0);
        assert!(smart.network_cost_ms >= 0.0);
    }

    #[test]
    fn fewer_rings_better_dedup_more_network_cost() {
        // Fig. 6(a): storage cost falls and network cost rises as rings
        // grow (fewer rings of more nodes).
        let net = testbed();
        let ds = datasets::accelerometer(20, 42);
        let w = Workload::from_dataset(&ds, 20, 400, 0);
        let cfg = SystemConfig::paper_testbed();
        let few = run_system(&net, &w, &Strategy::Smart(smart_partition(20, 2)), &cfg);
        let many = run_system(&net, &w, &Strategy::Smart(smart_partition(20, 10)), &cfg);
        assert!(
            few.storage_bytes < many.storage_bytes,
            "bigger rings should store less: {} vs {}",
            few.storage_bytes,
            many.storage_bytes
        );
        assert!(
            few.network_cost_ms > many.network_cost_ms,
            "bigger rings should pay more lookups: {} vs {}",
            few.network_cost_ms,
            many.network_cost_ms
        );
    }

    #[test]
    fn smart_lead_grows_with_wan_latency() {
        // Fig. 5(b): extra edge↔cloud latency hurts the cloud strategies
        // more than EF-dedup.
        let ratio_at = |wan_ms: f64| {
            let topo = TopologyBuilder::new()
                .edge_sites(10, 2)
                .cloud_site(4)
                .build();
            let net = Network::new(
                topo,
                NetworkConfig::paper_testbed().with_wan_latency_ms(wan_ms),
            );
            let ds = datasets::accelerometer(20, 42);
            let w = Workload::from_dataset(&ds, 20, 400, 0);
            let cfg = SystemConfig::paper_testbed();
            let smart = run_system(&net, &w, &Strategy::Smart(smart_partition(20, 5)), &cfg);
            let ca = run_system(&net, &w, &Strategy::CloudAssisted, &cfg);
            smart.aggregate_throughput_mbps / ca.aggregate_throughput_mbps
        };
        let low = ratio_at(12.2);
        let high = ratio_at(100.0);
        assert!(
            high > low,
            "SMART lead should grow with latency: {low} -> {high}"
        );
    }

    #[test]
    fn local_lookup_fraction_tracks_gamma_over_ring_size() {
        let net = testbed();
        let ds = datasets::accelerometer(8, 42);
        let w = Workload::from_dataset(&ds, 8, 600, 0);
        let cfg = SystemConfig::paper_testbed();
        // One ring of 8 with gamma 2: expect ~25% local lookups.
        let m = run_system(&net, &w, &Strategy::Smart(smart_partition(8, 1)), &cfg);
        let local: f64 = m.nodes.iter().map(|x| x.local_lookup_fraction).sum::<f64>() / 8.0;
        assert!(
            (0.15..0.40).contains(&local),
            "local fraction {local}, expected near gamma/|P| = 0.25"
        );
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let (smart, ca, co) = run_all(6, 200);
        for m in [&smart, &ca, &co] {
            assert_eq!(m.total_chunks, 6 * 200);
            let node_unique: u64 = m.nodes.iter().map(|x| x.unique_chunks).sum();
            assert_eq!(node_unique, m.unique_chunks, "{}", m.strategy);
            assert!(m.makespan_secs > 0.0);
            assert!(m.aggregate_throughput_mbps > 0.0);
            assert!((m.dedup_ratio - m.total_chunks as f64 / m.unique_chunks as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn cache_preserves_dedup_and_cuts_network_cost() {
        // The one-sided cache may change *when* a duplicate is detected
        // (locally vs via the ring) but never *whether*: every dedup
        // quantity must be bit-identical with the cache on or off, while
        // measured lookup network cost can only shrink.
        let net = testbed();
        let ds = datasets::accelerometer(8, 42);
        let w = Workload::from_dataset(&ds, 8, 600, 0);
        let partition = smart_partition(8, 2);
        let off = run_system(
            &net,
            &w,
            &Strategy::Smart(partition.clone()),
            &SystemConfig::paper_testbed(),
        );
        let on = run_system(
            &net,
            &w,
            &Strategy::Smart(partition),
            &SystemConfig::with_cache(1 << 16),
        );
        assert_eq!(off.unique_chunks, on.unique_chunks);
        assert_eq!(off.dedup_ratio, on.dedup_ratio);
        assert_eq!(off.storage_bytes, on.storage_bytes);
        for (a, b) in off.nodes.iter().zip(&on.nodes) {
            assert_eq!(a.unique_chunks, b.unique_chunks);
        }
        assert!(
            on.network_cost_ms <= off.network_cost_ms,
            "cache increased network cost: {} -> {}",
            off.network_cost_ms,
            on.network_cost_ms
        );
        assert_eq!(off.cache, CacheStats::default());
        assert!(on.cache.hits > 0, "cache never hit: {:?}", on.cache);
        assert_eq!(
            on.cache.hits + on.cache.misses,
            on.total_chunks,
            "every chunk is exactly one lookup"
        );
    }

    #[test]
    fn restore_stats_populate_for_every_strategy() {
        let (smart, ca, co) = run_all(8, 300);
        for m in [&smart, &ca, &co] {
            assert_eq!(m.restore.restores, 8, "{}", m.strategy);
            // Every manifest chunk was placed by its scope's layout, so
            // a restore reads all of them.
            assert_eq!(m.restore.chunks_read, m.total_chunks, "{}", m.strategy);
            assert!(
                m.restore.fragmentation_mean >= 1.0,
                "{}: fragmentation {}",
                m.strategy,
                m.restore.fragmentation_mean
            );
            assert!(
                (0.0..=1.0).contains(&m.restore.locality),
                "{}: locality {}",
                m.strategy,
                m.restore.locality
            );
            // Default policy is Off: no rewrites anywhere.
            assert_eq!(m.restore.rewrites, 0, "{}", m.strategy);
            assert_eq!(m.restore.rewrite_bytes, 0, "{}", m.strategy);
        }
        // Ring restores fan out over replica holders; the cloud baselines
        // are served by the single cloud endpoint.
        assert!(smart.restore.node_fragmentation_mean >= 1.0);
        assert_eq!(ca.restore.node_fragmentation_mean, 1.0);
        assert_eq!(co.restore.node_fragmentation_mean, 1.0);
    }

    #[test]
    fn defrag_rewrites_without_touching_dedup_verdicts() {
        let net = testbed();
        let ds = datasets::accelerometer(8, 42);
        let w = Workload::from_dataset(&ds, 8, 600, 0);
        let partition = smart_partition(8, 2);
        let off = run_system(
            &net,
            &w,
            &Strategy::Smart(partition.clone()),
            &SystemConfig::paper_testbed(),
        );
        let cfg_on = SystemConfig {
            // Small containers so the write frontier moves often enough
            // for duplicates to fall out of the window at test scale.
            container_bytes: 16 * 4096,
            ..SystemConfig::with_defrag(1)
        };
        let on = run_system(&net, &w, &Strategy::Smart(partition), &cfg_on);
        // The layout model observes the ingest stream; it never feeds
        // back into dedup verdicts.
        assert_eq!(off.unique_chunks, on.unique_chunks);
        assert_eq!(off.dedup_ratio, on.dedup_ratio);
        assert_eq!(off.storage_bytes, on.storage_bytes);
        assert_eq!(off.restore.rewrites, 0);
        assert!(
            on.restore.rewrites > 0,
            "capped rewrite never fired on a duplicate-rich stream"
        );
        assert_eq!(
            on.restore.rewrite_bytes,
            on.restore.rewrites * w.chunk_size() as u64
        );
    }

    #[test]
    #[should_panic(expected = "central cloud")]
    fn cloud_site_required() {
        let topo = TopologyBuilder::new().edge_site(2).build();
        let net = Network::new(topo, NetworkConfig::paper_testbed());
        let ds = datasets::accelerometer(2, 1);
        let w = Workload::from_dataset(&ds, 2, 10, 0);
        run_system(
            &net,
            &w,
            &Strategy::CloudOnly,
            &SystemConfig::paper_testbed(),
        );
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::CloudOnly.label(), "Cloud-Only");
        assert_eq!(Strategy::CloudAssisted.label(), "Cloud-Assisted");
        assert_eq!(
            Strategy::Smart(Partition::new(vec![vec![0]]).unwrap()).label(),
            "SMART"
        );
    }
}
