//! Workloads: per-node chunk-hash streams.

use ef_chunking::{ChunkHash, Chunker};
use ef_datagen::datasets::Dataset;
use ef_datagen::ChunkRef;

/// A per-node stream of chunk hashes to deduplicate.
///
/// Two construction paths:
///
/// * [`Workload::from_dataset`] — draws chunk *references* from a
///   dataset's generative model and hashes their canonical encoding. This
///   skips byte materialization, so large sweeps stay fast, while
///   preserving the exact equality structure (same reference ⇔ same
///   hash).
/// * [`Workload::from_streams`] — chunks and hashes real byte streams.
///
/// A unit test in this module proves both paths yield identical
/// uniqueness structure on the same draws.
#[derive(Debug, Clone)]
pub struct Workload {
    per_node: Vec<Vec<ChunkHash>>,
    chunk_size: usize,
}

impl Workload {
    /// Builds a workload directly from per-node hash streams.
    ///
    /// # Panics
    ///
    /// Panics when `per_node` is empty or `chunk_size` is zero.
    pub fn new(per_node: Vec<Vec<ChunkHash>>, chunk_size: usize) -> Self {
        assert!(!per_node.is_empty(), "workload needs at least one node");
        assert!(chunk_size > 0, "chunk size must be positive");
        Workload {
            per_node,
            chunk_size,
        }
    }

    /// Draws `chunks_per_node` chunks for each of `nodes` sources from
    /// `dataset` at `time_slot`, hashing the canonical reference encoding.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero or exceeds the dataset's source count,
    /// or `chunks_per_node` is zero.
    pub fn from_dataset(
        dataset: &Dataset,
        nodes: usize,
        chunks_per_node: usize,
        time_slot: u32,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(
            nodes <= dataset.model().source_count(),
            "dataset has only {} sources",
            dataset.model().source_count()
        );
        assert!(chunks_per_node > 0, "need at least one chunk per node");
        let per_node = (0..nodes)
            .map(|n| {
                dataset
                    .draw_file_refs(n, time_slot, 0, chunks_per_node)
                    .into_iter()
                    .map(hash_ref)
                    .collect()
            })
            .collect();
        Workload {
            per_node,
            chunk_size: dataset.model().chunk_size(),
        }
    }

    /// Chunks and hashes real byte streams, one per node.
    ///
    /// # Panics
    ///
    /// Panics when `streams` is empty.
    pub fn from_streams<C: Chunker>(chunker: &C, streams: &[Vec<u8>]) -> Self {
        assert!(!streams.is_empty(), "workload needs at least one node");
        let per_node = streams
            .iter()
            .map(|s| chunker.chunk(s).into_iter().map(|c| c.hash).collect())
            .collect();
        Workload {
            per_node,
            chunk_size: chunker.target_chunk_size(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// The hash stream of node `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is out of range.
    pub fn stream(&self, n: usize) -> &[ChunkHash] {
        &self.per_node[n]
    }

    /// Bytes per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Total chunks across nodes.
    pub fn total_chunks(&self) -> u64 {
        self.per_node.iter().map(|s| s.len() as u64).sum()
    }

    /// Total input bytes across nodes.
    pub fn total_bytes(&self) -> u64 {
        self.total_chunks() * self.chunk_size as u64
    }
}

/// Canonical hash of a chunk reference: equals the hash structure of the
/// materialized chunk without paying materialization.
fn hash_ref(r: ChunkRef) -> ChunkHash {
    let mut buf = [0u8; 12];
    buf[..4].copy_from_slice(&r.pool.to_be_bytes());
    buf[4..].copy_from_slice(&r.index.to_be_bytes());
    ChunkHash::of(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_chunking::FixedChunker;
    use ef_datagen::datasets;

    #[test]
    fn dataset_and_byte_paths_have_identical_uniqueness() {
        let ds = datasets::accelerometer(4, 5);
        let fast = Workload::from_dataset(&ds, 4, 150, 0);

        // Materialize the same draws into bytes and chunk them.
        let streams: Vec<Vec<u8>> = (0..4)
            .map(|n| {
                ds.draw_file_refs(n, 0, 0, 150)
                    .into_iter()
                    .flat_map(|r| ds.materialize(r))
                    .collect()
            })
            .collect();
        let chunker = FixedChunker::new(ds.model().chunk_size()).unwrap();
        let slow = Workload::from_streams(&chunker, &streams);

        assert_eq!(fast.total_chunks(), slow.total_chunks());
        // Uniqueness structure must agree per node and globally.
        for n in 0..4 {
            let fa: std::collections::BTreeSet<_> = fast.stream(n).iter().collect();
            let sl: std::collections::BTreeSet<_> = slow.stream(n).iter().collect();
            assert_eq!(fa.len(), sl.len(), "node {n} distinct count differs");
        }
        let fa: std::collections::BTreeSet<_> = (0..4).flat_map(|n| fast.stream(n)).collect();
        let sl: std::collections::BTreeSet<_> = (0..4).flat_map(|n| slow.stream(n)).collect();
        assert_eq!(fa.len(), sl.len(), "global distinct count differs");
    }

    #[test]
    fn workload_accessors() {
        let ds = datasets::traffic_video(3, 1);
        let w = Workload::from_dataset(&ds, 3, 10, 0);
        assert_eq!(w.node_count(), 3);
        assert_eq!(w.stream(0).len(), 10);
        assert_eq!(w.total_chunks(), 30);
        assert_eq!(w.total_bytes(), 30 * ds.model().chunk_size() as u64);
    }

    #[test]
    fn same_slot_same_workload() {
        let ds = datasets::accelerometer(2, 9);
        let a = Workload::from_dataset(&ds, 2, 20, 1);
        let b = Workload::from_dataset(&ds, 2, 20, 1);
        assert_eq!(a.stream(0), b.stream(0));
        let c = Workload::from_dataset(&ds, 2, 20, 2);
        assert_ne!(a.stream(0), c.stream(0));
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_nodes_rejected() {
        let ds = datasets::accelerometer(2, 9);
        Workload::from_dataset(&ds, 5, 10, 0);
    }
}
