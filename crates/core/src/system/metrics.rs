//! Metrics produced by a system run.

use serde::{Deserialize, Serialize};

/// Per-node pipeline metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeMetrics {
    /// Chunks this node processed.
    pub chunks: u64,
    /// Chunks found unique (uploaded to the cloud).
    pub unique_chunks: u64,
    /// Mean hash-lookup network cost per chunk (RTT ms; 0 when local).
    pub avg_lookup_ms: f64,
    /// Fraction of lookups answered by a local replica.
    pub local_lookup_fraction: f64,
    /// Steady-state per-chunk pipeline time (seconds).
    pub chunk_time_secs: f64,
    /// The node's dedup throughput in MB/s (input bytes processed per
    /// second, the paper's metric).
    pub throughput_mbps: f64,
}

/// Fault-handling counters aggregated from the dedup index cluster and
/// the simulated network (all zero for a fault-free run).
///
/// Populate from a chaos-rigged cluster with
/// [`RobustnessMetrics::from_sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RobustnessMetrics {
    /// Per-op timeouts the index coordinators recorded.
    pub index_timeouts: u64,
    /// Retry rounds the index coordinators issued.
    pub index_retries: u64,
    /// Check-and-inserts resolved in degraded "assume unique" mode
    /// (each one is at worst a redundant upload, never data loss).
    pub degraded_lookups: u64,
    /// Messages the simulated network dropped (loss + partitions).
    pub messages_dropped: u64,
    /// WAL records replayed by restarting index nodes.
    #[serde(default)]
    pub wal_records_replayed: u64,
    /// WAL snapshot compactions taken across all index nodes.
    #[serde(default)]
    pub wal_snapshots: u64,
    /// Index nodes that crash-stopped and restarted from their WAL.
    #[serde(default)]
    pub node_restarts: u64,
    /// Scheduled anti-entropy rounds the cluster ran.
    #[serde(default)]
    pub antientropy_rounds: u64,
    /// Divergent Merkle buckets anti-entropy repaired.
    #[serde(default)]
    pub buckets_repaired: u64,
    /// Index entries streamed to close those divergences.
    #[serde(default)]
    pub entries_repaired: u64,
    /// Entries re-replicated to new owners after permanent departures.
    #[serde(default)]
    pub rereplicated_entries: u64,
    /// Hints dropped because their target permanently departed.
    #[serde(default)]
    pub hints_dropped: u64,
    /// Dead-timeout escalations peers recorded (observer × dead node).
    #[serde(default)]
    pub dead_declared: u64,
    /// Worst restart-to-convergence latency (ns; 0 when no node
    /// restarted or none has converged yet).
    #[serde(default)]
    pub recovery_latency_ns_max: u64,
    /// End-to-end integrity counters: frames rejected by wire checksums,
    /// scrub progress, mismatches detected, and how each one was
    /// resolved (read-repair, cloud decode, or declared lost).
    #[serde(default)]
    pub integrity: ef_kvstore::IntegrityStats,
    /// Fingerprint-cache counters aggregated over the index coordinators
    /// (all zero when the cache was not enabled).
    #[serde(default)]
    pub cache: ef_kvstore::CacheStats,
    /// Gray-failure mitigation counters: hedged lookups, load shedding,
    /// queue pressure and adaptive-timeout activity (all zero when the
    /// mitigations were not enabled).
    #[serde(default)]
    pub gray: ef_kvstore::GrayFailureStats,
    /// Disaster-tolerance counters: durable upload-spool depth and drain
    /// totals, mesh-vs-cloud repair counts, bytes and wire costs, outage
    /// windows and time-to-recovery (all zero when no cloud uplink was
    /// enabled and no disaster was injected).
    #[serde(default)]
    pub disaster: ef_kvstore::DisasterStats,
    /// Byzantine-tolerance counters: proof-of-possession challenges,
    /// rejected false claims and poisoned bytes, trust-ledger strikes
    /// and liar quarantines (all zero when PoP was not armed and no
    /// peer misbehaved).
    #[serde(default)]
    pub byzantine: ef_kvstore::ByzantineStats,
}

impl RobustnessMetrics {
    /// Snapshots the fault counters of a simulated index cluster.
    pub fn from_sim(cluster: &ef_kvstore::SimCluster) -> Self {
        let recovery = cluster.recovery_stats();
        RobustnessMetrics {
            index_timeouts: cluster.timeouts(),
            index_retries: cluster.retries(),
            degraded_lookups: cluster.degraded_ops(),
            messages_dropped: cluster.network().messages_dropped(),
            wal_records_replayed: recovery.wal_records_replayed,
            wal_snapshots: cluster.wal_snapshots(),
            node_restarts: recovery.restarts,
            antientropy_rounds: recovery.antientropy_rounds,
            buckets_repaired: recovery.buckets_repaired,
            entries_repaired: recovery.entries_repaired,
            rereplicated_entries: recovery.rereplicated_entries,
            hints_dropped: recovery.hints_dropped,
            dead_declared: recovery.dead_declared,
            recovery_latency_ns_max: cluster
                .recovery_latencies()
                .into_iter()
                .map(|(_, d)| d.as_nanos())
                .max()
                .unwrap_or(0),
            integrity: cluster.integrity(),
            cache: cluster.cache_stats(),
            gray: cluster.gray_stats(),
            disaster: cluster.disaster_stats(),
            byzantine: cluster.byzantine_stats(),
        }
    }

    /// True when the run saw no fault-handling activity at all. Cache
    /// traffic is not fault activity, so it is ignored here; likewise
    /// the passive gray-failure observation counters (RTT samples,
    /// adapted timers, queue high-water mark), which accrue on every op
    /// once the mitigations are enabled even when nothing is wrong.
    /// Active mitigation — hedges, sheds, gray marks — is not quiet.
    /// The same split applies to the disaster layer: routine spool
    /// enqueue/drain traffic accrues on every unique once the uplink is
    /// enabled and is ignored, while outage windows, ring wipes,
    /// retransmits, spooled hints and repairs mean something went wrong.
    /// And to the trust layer: challenges issued, passed, or answered
    /// from the proven-possession cache are the routine price of armed
    /// proof-of-possession, while failed challenges, rejected claims,
    /// strikes and quarantines mean a peer actually lied.
    pub fn is_quiet(&self) -> bool {
        RobustnessMetrics {
            cache: ef_kvstore::CacheStats::default(),
            gray: ef_kvstore::GrayFailureStats {
                rtt_samples: 0,
                rto_adaptations: 0,
                queue_peak: 0,
                ..self.gray
            },
            disaster: ef_kvstore::DisasterStats {
                spool_enqueued: 0,
                spool_drained: 0,
                spool_depth: 0,
                spool_high_water: 0,
                spool_bytes_enqueued: 0,
                spool_bytes_drained: 0,
                ..self.disaster
            },
            byzantine: ef_kvstore::ByzantineStats {
                challenges_issued: 0,
                challenges_passed: 0,
                pop_cache_hits: 0,
                ..self.byzantine
            },
            ..*self
        } == RobustnessMetrics::default()
    }
}

/// System-level metrics of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Strategy label ("SMART", "Cloud-Assisted", "Cloud-Only", …).
    pub strategy: String,
    /// Total input bytes across all nodes.
    pub total_input_bytes: u64,
    /// Total chunks across all nodes.
    pub total_chunks: u64,
    /// Distinct chunks within each dedup scope, summed over scopes
    /// (rings for EF-dedup, global for the cloud strategies).
    pub unique_chunks: u64,
    /// Measured dedup ratio: `total_chunks / unique_chunks`.
    pub dedup_ratio: f64,
    /// Bytes that crossed the WAN to the central cloud.
    pub wan_bytes: u64,
    /// Transient storage the dedup scopes hold (unique chunks × chunk
    /// size) — the `U` proxy of Eq. (1).
    pub storage_bytes: u64,
    /// Total measured hash-lookup network cost (Σ RTT ms over all
    /// non-local lookups) — the `V` proxy of Eq. (2).
    pub network_cost_ms: f64,
    /// Wall time to drain every node's workload (seconds).
    pub makespan_secs: f64,
    /// Aggregate dedup throughput: total input bytes / makespan (MB/s).
    pub aggregate_throughput_mbps: f64,
    /// Mean per-node throughput (MB/s).
    pub mean_node_throughput_mbps: f64,
    /// Fault-handling counters (all zero for a fault-free run; absent
    /// fields in serialized input default to zero).
    #[serde(default)]
    pub robustness: RobustnessMetrics,
    /// Fingerprint-cache counters of the analytic ingest pass (all zero
    /// when `SystemConfig::cache_capacity` is 0, the default).
    #[serde(default)]
    pub cache: ef_kvstore::CacheStats,
    /// Restore-path accounting over the container layout the run built:
    /// per-node fragmentation (distinct containers per restore), read
    /// locality, serving-node spread, and defrag rewrite costs (absent
    /// fields in serialized input default to zero).
    #[serde(default)]
    pub restore: ef_cloudstore::RestoreStats,
    /// Per-node details.
    pub nodes: Vec<NodeMetrics>,
}

impl SystemMetrics {
    /// The Eq. (3) aggregate cost of this run in storage-byte units:
    /// `storage_bytes + alpha_bytes_per_ms * network_cost_ms`.
    ///
    /// `alpha` here scales measured network milliseconds into byte-
    /// equivalents, mirroring the paper's trade-off factor.
    pub fn aggregate_cost(&self, alpha: f64) -> f64 {
        self.storage_bytes as f64 + alpha * self.network_cost_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_cost_composes() {
        let m = SystemMetrics {
            strategy: "test".into(),
            total_input_bytes: 0,
            total_chunks: 0,
            unique_chunks: 0,
            dedup_ratio: 1.0,
            wan_bytes: 0,
            storage_bytes: 1_000,
            network_cost_ms: 50.0,
            makespan_secs: 1.0,
            aggregate_throughput_mbps: 0.0,
            mean_node_throughput_mbps: 0.0,
            robustness: RobustnessMetrics::default(),
            cache: ef_kvstore::CacheStats::default(),
            restore: ef_cloudstore::RestoreStats::default(),
            nodes: Vec::new(),
        };
        assert_eq!(m.aggregate_cost(0.0), 1_000.0);
        assert_eq!(m.aggregate_cost(2.0), 1_100.0);
        assert!(m.robustness.is_quiet());
        assert!(m.restore.is_quiet());
    }

    #[test]
    fn quietness_ignores_cache_traffic() {
        // Cache hits are not fault activity: a fault-free cached run must
        // still read as quiet, while any real fault counter flips it.
        let mut r = RobustnessMetrics {
            cache: ef_kvstore::CacheStats {
                hits: 10,
                misses: 5,
                evictions: 1,
                insertions: 5,
                ..ef_kvstore::CacheStats::default()
            },
            ..RobustnessMetrics::default()
        };
        assert!(r.is_quiet());
        // Passive gray observation is not fault activity either...
        r.gray.rtt_samples = 40;
        r.gray.rto_adaptations = 12;
        r.gray.queue_peak = 3;
        assert!(r.is_quiet());
        // ...but active mitigation is.
        r.gray.hedges_fired = 1;
        assert!(!r.is_quiet());
        r.gray.hedges_fired = 0;
        r.index_timeouts = 1;
        assert!(!r.is_quiet());
        r.index_timeouts = 0;
        // Routine spool drain traffic is not fault activity...
        r.disaster.spool_enqueued = 8;
        r.disaster.spool_drained = 8;
        r.disaster.spool_high_water = 3;
        r.disaster.spool_bytes_enqueued = 1024;
        r.disaster.spool_bytes_drained = 1024;
        assert!(r.is_quiet());
        // ...but a disaster window, a retransmit or a repair is.
        r.disaster.outage_windows = 1;
        assert!(!r.is_quiet());
        r.disaster.outage_windows = 0;
        r.disaster.mesh_repairs = 1;
        assert!(!r.is_quiet());
        r.disaster.mesh_repairs = 0;
        // Routine proof-of-possession traffic is not fault activity...
        r.byzantine.challenges_issued = 20;
        r.byzantine.challenges_passed = 18;
        r.byzantine.pop_cache_hits = 7;
        assert!(r.is_quiet());
        // ...but a failed challenge or a quarantined liar is.
        r.byzantine.challenges_failed = 1;
        assert!(!r.is_quiet());
        r.byzantine.challenges_failed = 0;
        r.byzantine.liars_quarantined = 1;
        assert!(!r.is_quiet());
    }

    #[test]
    fn robustness_counters_track_a_faulty_cluster() {
        use ef_kvstore::{ChaosScenario, ChaosScenarioConfig, ClientOp, ClusterConfig, SimCluster};
        use ef_netsim::{Network, NetworkConfig, TopologyBuilder};
        use ef_simcore::{SimDuration, SimTime};

        let topo = TopologyBuilder::new().edge_site(2).edge_site(2).build();
        let mut net = Network::new(topo, NetworkConfig::paper_testbed());
        let scenario = ChaosScenario::generate(
            5,
            net.topology(),
            &ChaosScenarioConfig {
                base_loss: 0.3,
                ..ChaosScenarioConfig::default()
            },
        );
        scenario.rig(&mut net);
        let members = net.topology().edge_nodes();
        let mut cluster = SimCluster::new(members.clone(), net, ClusterConfig::default());
        scenario.apply(&mut cluster);
        let mut t = SimTime::ZERO;
        for i in 0..40u32 {
            let key = bytes::Bytes::from(i.to_be_bytes().to_vec());
            cluster.submit(
                t,
                members[(i as usize) % members.len()],
                ClientOp::CheckAndInsert(key.clone(), key),
            );
            t += SimDuration::from_millis(50);
        }
        cluster.run();
        let r = RobustnessMetrics::from_sim(&cluster);
        // 30% background loss over remote replica traffic must trip the
        // retry machinery and drop messages.
        assert!(r.messages_dropped > 0, "no drops under 30% loss");
        assert!(r.index_retries > 0, "no retries under 30% loss");
        assert!(!r.is_quiet());
    }
}
