//! # efdedup — collaborative data deduplication at the network edge
//!
//! A from-scratch reproduction of *EF-dedup: Enabling Collaborative Data
//! Deduplication at the Network Edge* (Li, Lan, Balasubramanian, Ra, Lee,
//! Panta — ICDCS 2019).
//!
//! EF-dedup partitions resource-constrained edge nodes into disjoint
//! deduplication clusters ("D2-rings"), keeps each ring's chunk-hash index
//! in a distributed key-value store spread over the ring's nodes, and
//! uploads only unique chunks to the central cloud. The partitioning
//! jointly optimizes storage space and network cost (the NP-hard **SNOD2**
//! problem) using the greedy **SMART** heuristic over a chunk-pool
//! similarity model fitted from data samples (**Algorithm 1**).
//!
//! The crate is organized by paper section:
//!
//! * [`model`] — the analytics of Sec. II/III: Theorem 1 dedup ratio
//!   `Ω(P)`, storage cost `U(P)` (Eq. 1), network cost `V(P)` (Eq. 2), and
//!   [`model::Snod2Instance`] bundling a full problem instance (Eq. 3).
//! * [`estimator`] — Algorithm 1: fitting chunk-pool sizes and
//!   characteristic vectors to measured dedup ratios of sampled files,
//!   with warm starts across time slots.
//! * [`partition`] — Algorithm 2 (SMART), the matching-based variant, the
//!   equal-size variant, the Network-Only / Dedup-Only / Random /
//!   SingleRing / PerSite baselines, and an exhaustive optimum for small
//!   instances.
//! * [`reduction`] — the Theorem 2 construction mapping minimum k-cut to
//!   SNOD2 (used to validate the NP-hardness algebra).
//! * [`system`] — Sec. IV: the Dedup Agent, D2-rings over the distributed
//!   key-value store, the central cloud, and the Cloud-Only /
//!   Cloud-Assisted baselines, all priced on the simulated testbed.
//! * [`experiments`] — parameterized runners reproducing every figure of
//!   Sec. V.
//!
//! # Quickstart
//!
//! ```
//! use efdedup::model::Snod2Instance;
//! use efdedup::partition::{Partitioner, SmartGreedy};
//! use ef_datagen::datasets;
//! use ef_netsim::{Network, NetworkConfig, TopologyBuilder};
//!
//! // Six edge nodes in three edge clouds, paper-testbed network.
//! let topo = TopologyBuilder::new().edge_sites(3, 2).cloud_site(1).build();
//! let net = Network::new(topo, NetworkConfig::paper_testbed());
//! let dataset = datasets::accelerometer(6, 42);
//!
//! // Build the SNOD2 instance from the dataset model + measured costs.
//! let inst = Snod2Instance::from_parts(
//!     dataset.model(),
//!     net.cost_matrix(&net.topology().edge_nodes()),
//!     0.1,   // alpha: network-vs-storage trade-off
//!     2,     // gamma: hash replication factor
//!     10.0,  // horizon T seconds
//! ).unwrap();
//!
//! // Partition into 3 D2-rings with SMART and inspect the cost.
//! let partition = SmartGreedy::default().partition(&inst, 3);
//! let cost = inst.total_cost(&partition);
//! assert!(cost.aggregate > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod experiments;
pub mod model;
pub mod partition;
pub mod reduction;
pub mod similarity;
pub mod system;
