//! Topology: nodes grouped into edge-cloud and central-cloud sites.

use crate::id::{NodeId, SiteId};
use serde::{Deserialize, Serialize};

/// Classifies a site as an edge cloud or the central cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// A resource-constrained edge cloud (e.g. a half rack in a central
    /// office).
    Edge,
    /// The central cloud (AWS in the paper's testbed).
    Cloud,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Site {
    kind: SiteKind,
    nodes: Vec<NodeId>,
}

/// An immutable description of which nodes exist and which site each
/// belongs to.
///
/// Build one with [`TopologyBuilder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<Site>,
    node_site: Vec<SiteId>,
}

impl Topology {
    /// Total number of nodes (edge + cloud).
    pub fn node_count(&self) -> usize {
        self.node_site.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The site a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics for an unknown node id.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.node_site[node.index()]
    }

    /// The kind of a site.
    ///
    /// # Panics
    ///
    /// Panics for an unknown site id.
    pub fn site_kind(&self, site: SiteId) -> SiteKind {
        self.sites[site.index()].kind
    }

    /// Nodes belonging to `site` in id order.
    pub fn nodes_in(&self, site: SiteId) -> &[NodeId] {
        &self.sites[site.index()].nodes
    }

    /// All edge nodes in id order.
    pub fn edge_nodes(&self) -> Vec<NodeId> {
        self.sites
            .iter()
            .filter(|s| s.kind == SiteKind::Edge)
            .flat_map(|s| s.nodes.iter().copied())
            .collect()
    }

    /// All cloud nodes in id order.
    pub fn cloud_nodes(&self) -> Vec<NodeId> {
        self.sites
            .iter()
            .filter(|s| s.kind == SiteKind::Cloud)
            .flat_map(|s| s.nodes.iter().copied())
            .collect()
    }

    /// All edge sites in id order.
    pub fn edge_sites(&self) -> Vec<SiteId> {
        (0..self.sites.len() as u32)
            .map(SiteId)
            .filter(|s| self.site_kind(*s) == SiteKind::Edge)
            .collect()
    }

    /// All cloud sites in id order.
    pub fn cloud_sites(&self) -> Vec<SiteId> {
        (0..self.sites.len() as u32)
            .map(SiteId)
            .filter(|s| self.site_kind(*s) == SiteKind::Cloud)
            .collect()
    }

    /// True when both nodes are in the same site.
    pub fn same_site(&self, a: NodeId, b: NodeId) -> bool {
        self.site_of(a) == self.site_of(b)
    }

    /// True when the node belongs to a cloud site.
    pub fn is_cloud_node(&self, node: NodeId) -> bool {
        self.site_kind(self.site_of(node)) == SiteKind::Cloud
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_site.len() as u32).map(NodeId)
    }
}

/// Builds a [`Topology`] site by site.
///
/// # Example
///
/// ```
/// use ef_netsim::{TopologyBuilder, SiteKind};
///
/// // The paper's testbed: 20 edge nodes in 10 edge clouds + a 4-VM cloud.
/// let mut b = TopologyBuilder::new();
/// for _ in 0..10 {
///     b = b.edge_site(2);
/// }
/// let topo = b.cloud_site(4).build();
/// assert_eq!(topo.edge_nodes().len(), 20);
/// assert_eq!(topo.cloud_nodes().len(), 4);
/// assert_eq!(topo.site_count(), 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    sites: Vec<(SiteKind, usize)>,
}

impl TopologyBuilder {
    /// Starts an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an edge cloud with `nodes` nodes.
    pub fn edge_site(mut self, nodes: usize) -> Self {
        self.sites.push((SiteKind::Edge, nodes));
        self
    }

    /// Adds a central-cloud site with `nodes` nodes.
    pub fn cloud_site(mut self, nodes: usize) -> Self {
        self.sites.push((SiteKind::Cloud, nodes));
        self
    }

    /// Adds `count` edge clouds of `nodes_each` nodes.
    pub fn edge_sites(mut self, count: usize, nodes_each: usize) -> Self {
        for _ in 0..count {
            self.sites.push((SiteKind::Edge, nodes_each));
        }
        self
    }

    /// Finalizes the topology, assigning dense node and site ids in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics when no site was added or any site is empty.
    pub fn build(self) -> Topology {
        assert!(!self.sites.is_empty(), "topology needs at least one site");
        let mut sites = Vec::with_capacity(self.sites.len());
        let mut node_site = Vec::new();
        let mut next_node = 0u32;
        for (site_idx, (kind, count)) in self.sites.into_iter().enumerate() {
            assert!(count > 0, "site {site_idx} has no nodes");
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                nodes.push(NodeId(next_node));
                node_site.push(SiteId(site_idx as u32));
                next_node += 1;
            }
            sites.push(Site { kind, nodes });
        }
        Topology { sites, node_site }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Topology {
        TopologyBuilder::new()
            .edge_site(2)
            .edge_site(3)
            .cloud_site(1)
            .build()
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let t = sample();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.site_count(), 3);
        assert_eq!(t.site_of(NodeId(0)), SiteId(0));
        assert_eq!(t.site_of(NodeId(1)), SiteId(0));
        assert_eq!(t.site_of(NodeId(4)), SiteId(1));
        assert_eq!(t.site_of(NodeId(5)), SiteId(2));
    }

    #[test]
    fn edge_and_cloud_split() {
        let t = sample();
        assert_eq!(
            t.edge_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(t.cloud_nodes(), vec![NodeId(5)]);
        assert!(t.is_cloud_node(NodeId(5)));
        assert!(!t.is_cloud_node(NodeId(0)));
        assert_eq!(t.edge_sites(), vec![SiteId(0), SiteId(1)]);
        assert_eq!(t.cloud_sites(), vec![SiteId(2)]);
    }

    #[test]
    fn same_site_checks() {
        let t = sample();
        assert!(t.same_site(NodeId(0), NodeId(1)));
        assert!(!t.same_site(NodeId(1), NodeId(2)));
    }

    #[test]
    fn nodes_in_site() {
        let t = sample();
        assert_eq!(t.nodes_in(SiteId(1)), &[NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.site_kind(SiteId(2)), SiteKind::Cloud);
    }

    #[test]
    fn bulk_edge_sites() {
        let t = TopologyBuilder::new()
            .edge_sites(10, 2)
            .cloud_site(4)
            .build();
        assert_eq!(t.edge_nodes().len(), 20);
        assert_eq!(t.site_count(), 11);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_topology_panics() {
        TopologyBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "has no nodes")]
    fn empty_site_panics() {
        TopologyBuilder::new().edge_site(0).build();
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let t = sample();
        assert_eq!(t.nodes().count(), 6);
    }
}
