//! Identifier newtypes for nodes and sites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (an edge VM or a cloud VM) in the topology.
///
/// Node ids are dense indices assigned by [`TopologyBuilder`] in creation
/// order, so they can index arrays and matrices directly.
///
/// [`TopologyBuilder`]: crate::TopologyBuilder
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies a site: an edge cloud or the central cloud.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SiteId(1).to_string(), "s1");
    }

    #[test]
    fn index_and_from() {
        assert_eq!(NodeId::from(7u32).index(), 7);
        assert_eq!(SiteId::from(2u32).index(), 2);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(SiteId(0) < SiteId(5));
    }
}
