//! The network: topology + configuration, with analytic delay queries and
//! FIFO-occupancy transfers.

use crate::id::NodeId;
use crate::link::{LinkParams, NetworkConfig};
use crate::topology::{SiteKind, Topology};
use ef_simcore::{FifoServer, SimDuration, SimTime};
use std::collections::HashMap;

/// A simulated network over a [`Topology`].
///
/// Two complementary interfaces:
///
/// * **Analytic** — [`Network::oneway_delay`] / [`Network::rtt`] /
///   [`Network::transfer_delay`] return unloaded path delays; and
///   [`Network::cost_matrix`] derives the SNOD2 `v_ij` inputs (RTT in
///   milliseconds, the latency-based cost the paper uses).
/// * **Occupancy** — [`Network::transfer`] pushes bytes through per-node
///   uplink/downlink FIFO servers, so concurrent flows queue and sustained
///   load saturates links.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    config: NetworkConfig,
    /// Outgoing serialization server per node (models the NIC/uplink).
    uplinks: HashMap<NodeId, FifoServer>,
    bytes_sent: u64,
    messages_sent: u64,
}

impl Network {
    /// Creates a network with the given topology and link configuration.
    pub fn new(topology: Topology, config: NetworkConfig) -> Self {
        let uplinks = topology.nodes().map(|n| (n, FifoServer::new())).collect();
        Network {
            topology,
            config,
            uplinks,
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The [`LinkParams`] governing the path from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkParams {
        if src == dst {
            return self.config.loopback;
        }
        let ss = self.topology.site_of(src);
        let ds = self.topology.site_of(dst);
        if ss == ds {
            return self.config.intra_site;
        }
        let sk = self.topology.site_kind(ss);
        let dk = self.topology.site_kind(ds);
        match (sk, dk) {
            (SiteKind::Edge, SiteKind::Edge) => self.config.inter_edge,
            // Any path touching the central cloud crosses the WAN.
            _ => self.config.wan,
        }
    }

    /// Unloaded one-way propagation latency from `src` to `dst`.
    pub fn oneway_delay(&self, src: NodeId, dst: NodeId) -> SimDuration {
        self.link(src, dst).latency
    }

    /// Unloaded round-trip time between two nodes.
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> SimDuration {
        self.oneway_delay(src, dst) + self.oneway_delay(dst, src)
    }

    /// Unloaded transfer time of `bytes` from `src` to `dst` (latency plus
    /// serialization, no queueing).
    pub fn transfer_delay(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        self.link(src, dst).transfer_delay(bytes)
    }

    /// Sends `bytes` from `src` to `dst` starting at `now`, occupying the
    /// sender's uplink for the serialization time. Returns the arrival time
    /// at `dst`.
    ///
    /// Concurrent transfers from the same node queue FIFO behind each
    /// other, which is what bottlenecks a node's sustained upload rate at
    /// its link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics when `src` is unknown or arrivals go backwards in time (see
    /// [`FifoServer::serve`]).
    pub fn transfer(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        let link = self.link(src, dst);
        let serialization = link.serialization_delay(bytes);
        let uplink = self
            .uplinks
            .get_mut(&src)
            .expect("unknown source node");
        let sent = uplink.serve(now, serialization);
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        sent + link.latency
    }

    /// The earliest time `src`'s uplink is free (its current backlog end).
    pub fn uplink_free_at(&self, src: NodeId) -> SimTime {
        self.uplinks
            .get(&src)
            .map(|s| s.next_free())
            .unwrap_or(SimTime::ZERO)
    }

    /// Total bytes pushed through [`Network::transfer`].
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages pushed through [`Network::transfer`].
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Resets occupancy state and counters (e.g. between experiment runs).
    pub fn reset_occupancy(&mut self) {
        for s in self.uplinks.values_mut() {
            s.reset();
        }
        self.bytes_sent = 0;
        self.messages_sent = 0;
    }

    /// The SNOD2 network-cost matrix `v_ij` over the given nodes: RTT in
    /// milliseconds between each ordered pair (0 on the diagonal).
    ///
    /// The paper measures `v_ij` "by the necessary bandwidth or network
    /// delay of the non-local hash lookup"; a hash lookup is a
    /// request/response, hence RTT.
    pub fn cost_matrix(&self, nodes: &[NodeId]) -> Vec<Vec<f64>> {
        nodes
            .iter()
            .map(|&i| {
                nodes
                    .iter()
                    .map(|&j| {
                        if i == j {
                            0.0
                        } else {
                            self.rtt(i, j).as_millis_f64()
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn testbed() -> Network {
        // 2 edge clouds with 2 nodes each + 1 cloud node.
        let topo = TopologyBuilder::new()
            .edge_site(2)
            .edge_site(2)
            .cloud_site(1)
            .build();
        Network::new(topo, NetworkConfig::paper_testbed())
    }

    #[test]
    fn path_classification() {
        let net = testbed();
        let cfg = net.config();
        // intra-site
        assert_eq!(net.link(NodeId(0), NodeId(1)), cfg.intra_site);
        // inter-edge
        assert_eq!(net.link(NodeId(0), NodeId(2)), cfg.inter_edge);
        // WAN (edge → cloud and cloud → edge)
        assert_eq!(net.link(NodeId(0), NodeId(4)), cfg.wan);
        assert_eq!(net.link(NodeId(4), NodeId(0)), cfg.wan);
        // loopback
        assert_eq!(net.link(NodeId(3), NodeId(3)), cfg.loopback);
    }

    #[test]
    fn rtt_is_twice_oneway_for_symmetric_paths() {
        let net = testbed();
        let ow = net.oneway_delay(NodeId(0), NodeId(2));
        assert_eq!(net.rtt(NodeId(0), NodeId(2)), ow + ow);
    }

    #[test]
    fn transfer_queues_on_uplink() {
        let mut net = testbed();
        // 1.726 Gbps intra-site: 21575000 bytes take ~0.1 s to serialize.
        let bytes = 21_575_000;
        let a1 = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let a2 = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let gap = a2 - a1;
        assert!((gap.as_secs_f64() - 0.1).abs() < 1e-3, "gap {gap}");
        assert_eq!(net.bytes_sent(), bytes * 2);
        assert_eq!(net.messages_sent(), 2);
    }

    #[test]
    fn transfers_from_different_nodes_do_not_queue() {
        let mut net = testbed();
        let bytes = 21_575_000;
        let a1 = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let a2 = net.transfer(SimTime::ZERO, NodeId(1), NodeId(0), bytes);
        assert_eq!(a1, a2);
    }

    #[test]
    fn cost_matrix_is_symmetric_with_zero_diagonal() {
        let net = testbed();
        let nodes: Vec<NodeId> = net.topology().edge_nodes();
        let m = net.cost_matrix(&nodes);
        for i in 0..nodes.len() {
            assert_eq!(m[i][i], 0.0);
            for j in 0..nodes.len() {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        // Intra-site pair cheaper than inter-edge pair.
        assert!(m[0][1] < m[0][2]);
    }

    #[test]
    fn wan_slower_than_edge() {
        let net = testbed();
        let edge_rtt = net.rtt(NodeId(0), NodeId(2));
        let wan_rtt = net.rtt(NodeId(0), NodeId(4));
        assert!(wan_rtt > edge_rtt);
        // Paper numbers: 2*12.2 = 24.4 ms WAN RTT.
        assert!((wan_rtt.as_millis_f64() - 24.4).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = testbed();
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        net.reset_occupancy();
        assert_eq!(net.bytes_sent(), 0);
        assert_eq!(net.messages_sent(), 0);
        assert_eq!(net.uplink_free_at(NodeId(0)), SimTime::ZERO);
    }
}
