//! The network: topology + configuration, with analytic delay queries and
//! FIFO-occupancy transfers.

use crate::fault::{FaultOutcome, FaultPlan};
use crate::id::NodeId;
use crate::link::{LinkParams, NetworkConfig};
use crate::topology::{SiteKind, Topology};
use ef_simcore::{FifoServer, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Error from occupancy-tracking [`Network`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkError {
    /// The node has no uplink in the topology.
    UnknownNode(NodeId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownNode(n) => write!(f, "node {n:?} has no uplink"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Verdict of a fault-aware framed send ([`Network::send_framed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the frame arrives at the destination.
    pub arrival: SimTime,
    /// True when payload bits were flipped in flight (wire bit rot): the
    /// receiver's frame checksum is expected to reject the message.
    pub corrupt: bool,
}

/// A simulated network over a [`Topology`].
///
/// Two complementary interfaces:
///
/// * **Analytic** — [`Network::oneway_delay`] / [`Network::rtt`] /
///   [`Network::transfer_delay`] return unloaded path delays; and
///   [`Network::cost_matrix`] derives the SNOD2 `v_ij` inputs (RTT in
///   milliseconds, the latency-based cost the paper uses).
/// * **Occupancy** — [`Network::transfer`] pushes bytes through per-node
///   uplink/downlink FIFO servers, so concurrent flows queue and sustained
///   load saturates links.
///
/// A seeded [`FaultPlan`] may be attached with [`Network::set_fault_plan`];
/// [`Network::send`] then subjects every message to it (loss, jitter,
/// degradation, partitions) while [`Network::transfer`] stays fault-free for
/// analytic callers.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    config: NetworkConfig,
    /// Outgoing serialization server per node (models the NIC/uplink).
    uplinks: BTreeMap<NodeId, FifoServer>,
    fault_plan: Option<FaultPlan>,
    bytes_sent: u64,
    messages_sent: u64,
    messages_dropped: u64,
    bytes_dropped: u64,
    messages_corrupted: u64,
}

impl Network {
    /// Creates a network with the given topology and link configuration.
    pub fn new(topology: Topology, config: NetworkConfig) -> Self {
        let uplinks = topology.nodes().map(|n| (n, FifoServer::new())).collect();
        Network {
            topology,
            config,
            uplinks,
            fault_plan: None,
            bytes_sent: 0,
            messages_sent: 0,
            messages_dropped: 0,
            bytes_dropped: 0,
            messages_corrupted: 0,
        }
    }

    /// Attaches a fault plan; subsequent [`Network::send`] calls consult it.
    /// Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes and returns the attached fault plan, if any.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The [`LinkParams`] governing the path from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkParams {
        if src == dst {
            return self.config.loopback;
        }
        let ss = self.topology.site_of(src);
        let ds = self.topology.site_of(dst);
        if ss == ds {
            return self.config.intra_site;
        }
        let sk = self.topology.site_kind(ss);
        let dk = self.topology.site_kind(ds);
        match (sk, dk) {
            (SiteKind::Edge, SiteKind::Edge) => self.config.inter_edge,
            // Any path touching the central cloud crosses the WAN.
            _ => self.config.wan,
        }
    }

    /// Unloaded one-way propagation latency from `src` to `dst`.
    pub fn oneway_delay(&self, src: NodeId, dst: NodeId) -> SimDuration {
        self.link(src, dst).latency
    }

    /// Unloaded round-trip time between two nodes.
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> SimDuration {
        self.oneway_delay(src, dst) + self.oneway_delay(dst, src)
    }

    /// Unloaded transfer time of `bytes` from `src` to `dst` (latency plus
    /// serialization, no queueing).
    pub fn transfer_delay(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        self.link(src, dst).transfer_delay(bytes)
    }

    /// Sends `bytes` from `src` to `dst` starting at `now`, occupying the
    /// sender's uplink for the serialization time. Returns the arrival time
    /// at `dst`.
    ///
    /// Concurrent transfers from the same node queue FIFO behind each
    /// other, which is what bottlenecks a node's sustained upload rate at
    /// its link bandwidth.
    ///
    /// # Errors
    ///
    /// [`NetworkError::UnknownNode`] when `src` has no uplink.
    ///
    /// # Panics
    ///
    /// Panics when arrivals go backwards in time (see
    /// [`FifoServer::serve`]).
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<SimTime, NetworkError> {
        self.transfer_scaled(now, src, dst, bytes, 1.0, 1.0)
    }

    /// [`Network::transfer`] with the service time stretched by fault
    /// factors. A fail-slow node (`slow_factor`) degrades its whole
    /// service leg — serialization *and* the per-message processing
    /// modeled by the link latency — which is what makes gray nodes
    /// visible even to small control RPCs. A congested link
    /// (`bandwidth_factor`) only divides bandwidth, stretching nothing
    /// but serialization. The stretched serialization occupies the
    /// sender's uplink, so backlog accumulates exactly as a slow disk
    /// or NIC would make it.
    fn transfer_scaled(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        slow_factor: f64,
        bandwidth_factor: f64,
    ) -> Result<SimTime, NetworkError> {
        let link = self.link(src, dst);
        let serialization = link.serialization_delay(bytes) * (slow_factor * bandwidth_factor);
        let uplink = self
            .uplinks
            .get_mut(&src)
            .ok_or(NetworkError::UnknownNode(src))?;
        let sent = uplink.serve(now, serialization);
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        Ok(sent + link.latency * slow_factor)
    }

    /// Fault-aware variant of [`Network::transfer`]: sends `bytes` from
    /// `src` to `dst` starting at `now`, subjecting the message to the
    /// attached [`FaultPlan`] (if any). Returns `Ok(Some(arrival))` on
    /// delivery and `Ok(None)` when the message is lost to a loss rule
    /// or an active partition.
    ///
    /// The sender's uplink is occupied either way — a lost message was
    /// still transmitted; it vanishes downstream. Loopback messages
    /// (`src == dst`) are never dropped. Without a fault plan this
    /// behaves exactly like [`Network::transfer`].
    ///
    /// # Errors
    ///
    /// [`NetworkError::UnknownNode`] when `src` has no uplink.
    ///
    /// # Panics
    ///
    /// Panics when arrivals go backwards in time (see
    /// [`FifoServer::serve`]).
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<Option<SimTime>, NetworkError> {
        Ok(self.send_framed(now, src, dst, bytes)?.map(|d| d.arrival))
    }

    /// Like [`Network::send`], but reports whether the delivered frame
    /// was corrupted in flight by a bit-rot rule. Checksum-aware callers
    /// use this and reject corrupt frames at the receiver; plain
    /// [`Network::send`] callers see a corrupt frame as an ordinary
    /// arrival (the corruption still counts in
    /// [`Network::messages_corrupted`]).
    ///
    /// # Errors
    ///
    /// [`NetworkError::UnknownNode`] when `src` has no uplink.
    ///
    /// # Panics
    ///
    /// Panics when arrivals go backwards in time (see
    /// [`FifoServer::serve`]).
    pub fn send_framed(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<Option<Delivery>, NetworkError> {
        let base_latency = self.link(src, dst).latency;
        if src == dst {
            // Loopback never traverses a link: exempt from all faults,
            // including fail-slow service stretching.
            let arrival = self.transfer(now, src, dst, bytes)?;
            return Ok(Some(Delivery {
                arrival,
                corrupt: false,
            }));
        }
        let src_site = self.topology.site_of(src);
        let dst_site = self.topology.site_of(dst);
        // Fail-slow / congested-link stretching is charged on the uplink
        // *before* the probabilistic verdicts: the message was served
        // slowly whether or not it is then lost downstream. The query is
        // zero-draw, so plans without slow rules replay bit-identically.
        let (slow_factor, bandwidth_factor) = self
            .fault_plan
            .as_mut()
            .map(|p| p.service_factors(now, src, dst, src_site, dst_site))
            .unwrap_or((1.0, 1.0));
        let arrival = self.transfer_scaled(now, src, dst, bytes, slow_factor, bandwidth_factor)?;
        let Some(plan) = self.fault_plan.as_mut() else {
            return Ok(Some(Delivery {
                arrival,
                corrupt: false,
            }));
        };
        Ok(
            match plan.judge(now, src, dst, src_site, dst_site, base_latency) {
                FaultOutcome::Deliver(extra) => Some(Delivery {
                    arrival: arrival + extra,
                    corrupt: false,
                }),
                FaultOutcome::DeliverCorrupt(extra) => {
                    self.messages_corrupted += 1;
                    Some(Delivery {
                        arrival: arrival + extra,
                        corrupt: true,
                    })
                }
                FaultOutcome::Drop => {
                    self.messages_dropped += 1;
                    self.bytes_dropped += bytes;
                    None
                }
            },
        )
    }

    /// The earliest time `src`'s uplink is free (its current backlog end).
    pub fn uplink_free_at(&self, src: NodeId) -> SimTime {
        self.uplinks
            .get(&src)
            .map(|s| s.next_free())
            .unwrap_or(SimTime::ZERO)
    }

    /// Total bytes pushed through [`Network::transfer`].
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages pushed through [`Network::transfer`].
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost by the fault plan in [`Network::send`].
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Bytes lost by the fault plan in [`Network::send`].
    pub fn bytes_dropped(&self) -> u64 {
        self.bytes_dropped
    }

    /// Frames delivered with in-flight payload corruption.
    pub fn messages_corrupted(&self) -> u64 {
        self.messages_corrupted
    }

    /// Resets occupancy state and counters (e.g. between experiment runs).
    /// Fault-plan counters reset too; its RNG position and schedule do not.
    pub fn reset_occupancy(&mut self) {
        for s in self.uplinks.values_mut() {
            s.reset();
        }
        self.bytes_sent = 0;
        self.messages_sent = 0;
        self.messages_dropped = 0;
        self.bytes_dropped = 0;
        self.messages_corrupted = 0;
        if let Some(plan) = self.fault_plan.as_mut() {
            plan.reset_stats();
        }
    }

    /// The SNOD2 network-cost matrix `v_ij` over the given nodes: RTT in
    /// milliseconds between each ordered pair (0 on the diagonal).
    ///
    /// The paper measures `v_ij` "by the necessary bandwidth or network
    /// delay of the non-local hash lookup"; a hash lookup is a
    /// request/response, hence RTT.
    pub fn cost_matrix(&self, nodes: &[NodeId]) -> Vec<Vec<f64>> {
        nodes
            .iter()
            .map(|&i| {
                nodes
                    .iter()
                    .map(|&j| {
                        if i == j {
                            0.0
                        } else {
                            self.rtt(i, j).as_millis_f64()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The SNOD2 cost of fetching a chunk at `dst` from `src`, in
    /// milliseconds of RTT — the same latency-based `v_ij` unit
    /// [`Network::cost_matrix`] uses. Mesh repair extends the paper's
    /// cost accounting to the recovery tier: a neighbor-ring holder
    /// (inter-edge path) prices strictly below the erasure-coded cloud
    /// catalog (WAN path), so a wiped ring prefers neighbors and falls
    /// back to the cloud only for chunks no neighbor holds.
    pub fn repair_cost_ms(&self, src: NodeId, dst: NodeId) -> f64 {
        self.rtt(src, dst).as_millis_f64()
    }

    /// The cheapest live source for a repair fetch to `dst`, by
    /// [`Network::repair_cost_ms`], with NodeId order breaking ties so
    /// the choice is deterministic. `None` when `candidates` is empty.
    pub fn cheapest_source(&self, candidates: &[NodeId], dst: NodeId) -> Option<NodeId> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.repair_cost_ms(a, dst)
                .total_cmp(&self.repair_cost_ms(b, dst))
                .then(a.cmp(&b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn testbed() -> Network {
        // 2 edge clouds with 2 nodes each + 1 cloud node.
        let topo = TopologyBuilder::new()
            .edge_site(2)
            .edge_site(2)
            .cloud_site(1)
            .build();
        Network::new(topo, NetworkConfig::paper_testbed())
    }

    #[test]
    fn path_classification() {
        let net = testbed();
        let cfg = net.config();
        // intra-site
        assert_eq!(net.link(NodeId(0), NodeId(1)), cfg.intra_site);
        // inter-edge
        assert_eq!(net.link(NodeId(0), NodeId(2)), cfg.inter_edge);
        // WAN (edge → cloud and cloud → edge)
        assert_eq!(net.link(NodeId(0), NodeId(4)), cfg.wan);
        assert_eq!(net.link(NodeId(4), NodeId(0)), cfg.wan);
        // loopback
        assert_eq!(net.link(NodeId(3), NodeId(3)), cfg.loopback);
    }

    #[test]
    fn rtt_is_twice_oneway_for_symmetric_paths() {
        let net = testbed();
        let ow = net.oneway_delay(NodeId(0), NodeId(2));
        assert_eq!(net.rtt(NodeId(0), NodeId(2)), ow + ow);
    }

    #[test]
    fn transfer_queues_on_uplink() {
        let mut net = testbed();
        // 1.726 Gbps intra-site: 21575000 bytes take ~0.1 s to serialize.
        let bytes = 21_575_000;
        let a1 = net
            .transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap();
        let a2 = net
            .transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap();
        let gap = a2 - a1;
        assert!((gap.as_secs_f64() - 0.1).abs() < 1e-3, "gap {gap}");
        assert_eq!(net.bytes_sent(), bytes * 2);
        assert_eq!(net.messages_sent(), 2);
    }

    #[test]
    fn transfers_from_different_nodes_do_not_queue() {
        let mut net = testbed();
        let bytes = 21_575_000;
        let a1 = net
            .transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap();
        let a2 = net
            .transfer(SimTime::ZERO, NodeId(1), NodeId(0), bytes)
            .unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn cost_matrix_is_symmetric_with_zero_diagonal() {
        let net = testbed();
        let nodes: Vec<NodeId> = net.topology().edge_nodes();
        let m = net.cost_matrix(&nodes);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[j][i]);
            }
        }
        // Intra-site pair cheaper than inter-edge pair.
        assert!(m[0][1] < m[0][2]);
    }

    #[test]
    fn wan_slower_than_edge() {
        let net = testbed();
        let edge_rtt = net.rtt(NodeId(0), NodeId(2));
        let wan_rtt = net.rtt(NodeId(0), NodeId(4));
        assert!(wan_rtt > edge_rtt);
        // Paper numbers: 2*12.2 = 24.4 ms WAN RTT.
        assert!((wan_rtt.as_millis_f64() - 24.4).abs() < 1e-6);
    }

    #[test]
    fn repair_tier_prices_neighbor_ring_below_cloud() {
        let net = testbed();
        // A node in edge site 1 repairing node 0: the inter-edge neighbor
        // must be strictly cheaper than the cloud's WAN round trip.
        let neighbor = net.repair_cost_ms(NodeId(2), NodeId(0));
        let cloud = net.repair_cost_ms(NodeId(4), NodeId(0));
        assert!(
            neighbor < cloud,
            "neighbor {neighbor}ms must undercut cloud {cloud}ms"
        );
        // cheapest_source prefers the intra/inter-edge holder over the
        // cloud, and ties break deterministically by NodeId.
        assert_eq!(
            net.cheapest_source(&[NodeId(4), NodeId(2)], NodeId(0)),
            Some(NodeId(2))
        );
        assert_eq!(
            net.cheapest_source(&[NodeId(3), NodeId(2)], NodeId(0)),
            Some(NodeId(2)),
            "equal-cost holders must tie-break by NodeId"
        );
        assert_eq!(net.cheapest_source(&[], NodeId(0)), None);
    }

    #[test]
    fn send_respects_blackout_windows() {
        use crate::fault::{FaultPlan, FaultScope};
        use crate::id::SiteId;
        let mut net = testbed();
        // Cut the cloud site's uplink: all WAN traffic dies, edge-to-edge
        // traffic flows.
        net.set_fault_plan(FaultPlan::new(8).blackout(
            FaultScope::Site(SiteId(2)),
            SimTime::ZERO,
            SimTime::from_secs_f64(5.0),
        ));
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(4), 64), Ok(None));
        assert_eq!(net.send(SimTime::ZERO, NodeId(4), NodeId(0), 64), Ok(None));
        assert!(net
            .send(SimTime::ZERO, NodeId(0), NodeId(2), 64)
            .unwrap()
            .is_some());
        // After the window the uplink heals.
        assert!(net
            .send(SimTime::from_secs_f64(5.0), NodeId(0), NodeId(4), 64)
            .unwrap()
            .is_some());
    }

    #[test]
    fn send_without_plan_matches_transfer() {
        let mut net = testbed();
        let via_send = net
            .send(SimTime::ZERO, NodeId(0), NodeId(2), 1000)
            .unwrap()
            .unwrap();
        net.reset_occupancy();
        let via_transfer = net
            .transfer(SimTime::ZERO, NodeId(0), NodeId(2), 1000)
            .unwrap();
        assert_eq!(via_send, via_transfer);
    }

    #[test]
    fn send_drops_under_full_loss_but_loopback_survives() {
        use crate::fault::{FaultPlan, FaultScope};
        let mut net = testbed();
        net.set_fault_plan(FaultPlan::new(9).loss(FaultScope::All, 1.0));
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(2), 500), Ok(None));
        assert_eq!(net.messages_dropped(), 1);
        assert_eq!(net.bytes_dropped(), 500);
        // Loopback is exempt from faults.
        assert!(net
            .send(SimTime::ZERO, NodeId(3), NodeId(3), 500)
            .unwrap()
            .is_some());
        // Uplink was still occupied by the lost message.
        assert!(net.uplink_free_at(NodeId(0)) > SimTime::ZERO);
    }

    #[test]
    fn send_respects_partition_windows() {
        use crate::fault::FaultPlan;
        use crate::id::SiteId;
        let mut net = testbed();
        // Sites: 0 = {n0, n1}, 1 = {n2, n3}, 2 = cloud {n4}.
        net.set_fault_plan(FaultPlan::new(4).partition(
            SiteId(0),
            SiteId(1),
            SimTime::ZERO,
            SimTime::from_secs_f64(5.0),
        ));
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(2), 64), Ok(None));
        assert_eq!(net.send(SimTime::ZERO, NodeId(2), NodeId(1), 64), Ok(None));
        // Same-site and cloud paths unaffected.
        assert!(net
            .send(SimTime::ZERO, NodeId(0), NodeId(1), 64)
            .unwrap()
            .is_some());
        assert!(net
            .send(SimTime::ZERO, NodeId(0), NodeId(4), 64)
            .unwrap()
            .is_some());
        // After healing the pair talks again.
        let healed = SimTime::from_secs_f64(5.0);
        assert!(net
            .send(healed, NodeId(0), NodeId(2), 64)
            .unwrap()
            .is_some());
    }

    #[test]
    fn send_jitter_delays_but_delivers() {
        use crate::fault::{FaultPlan, FaultScope};
        let mut net = testbed();
        let clean = net
            .transfer(SimTime::ZERO, NodeId(0), NodeId(2), 64)
            .unwrap();
        net.reset_occupancy();
        net.set_fault_plan(FaultPlan::new(2).jitter(FaultScope::All, SimDuration::from_millis(3)));
        let max_extra = SimDuration::from_millis(3);
        for _ in 0..20 {
            net.reset_occupancy();
            let a = net
                .send(SimTime::ZERO, NodeId(0), NodeId(2), 64)
                .unwrap()
                .unwrap();
            assert!(a >= clean && a <= clean + max_extra, "arrival {a}");
        }
    }

    #[test]
    fn send_framed_flags_rotted_frames() {
        use crate::fault::{FaultPlan, FaultScope};
        let mut net = testbed();
        net.set_fault_plan(FaultPlan::new(6).bitrot(FaultScope::All, 1.0));
        let d = net
            .send_framed(SimTime::ZERO, NodeId(0), NodeId(2), 64)
            .unwrap()
            .unwrap();
        assert!(d.corrupt, "full bit rot must flag the frame");
        assert_eq!(net.messages_corrupted(), 1);
        assert_eq!(net.messages_dropped(), 0, "rot is not loss");
        // Loopback is exempt from faults.
        let lb = net
            .send_framed(SimTime::ZERO, NodeId(3), NodeId(3), 64)
            .unwrap()
            .unwrap();
        assert!(!lb.corrupt);
        // Plain send still reports the arrival but counts the rot.
        assert!(net
            .send(SimTime::ZERO, NodeId(0), NodeId(2), 64)
            .unwrap()
            .is_some());
        assert_eq!(net.messages_corrupted(), 2);
        net.reset_occupancy();
        assert_eq!(net.messages_corrupted(), 0);
    }

    #[test]
    fn slow_node_stretches_service_and_backlogs_its_uplink() {
        use crate::fault::FaultPlan;
        let mut net = testbed();
        let bytes = 21_575_000; // ~0.1 s serialization at 1.726 Gbps
        let clean = net
            .send(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap()
            .unwrap();
        let clean_backlog = net.uplink_free_at(NodeId(0));
        net.reset_occupancy();
        net.set_fault_plan(FaultPlan::new(3).slow_node(
            NodeId(0),
            4.0,
            SimTime::ZERO,
            SimTime::MAX,
        ));
        let slow = net
            .send(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap()
            .unwrap();
        let gap = (slow - clean).as_secs_f64();
        // 4x stretches the ~0.1s serialization by 0.3s and the 0.85ms
        // intra-site latency by 3 * 0.85ms (the whole service leg slows).
        assert!(
            (gap - 0.30255).abs() < 1e-3,
            "4x service should add ~0.30255s: {gap}"
        );
        // Backlog grows with the stretch: the next message queues behind it.
        assert!(net.uplink_free_at(NodeId(0)) > clean_backlog);
        // Other senders are unaffected.
        net.reset_occupancy();
        let other = net
            .send(SimTime::ZERO, NodeId(1), NodeId(0), bytes)
            .unwrap()
            .unwrap();
        assert_eq!(other, clean);
        assert_eq!(net.fault_plan().unwrap().stats().slowed, 0);
    }

    #[test]
    fn throttle_reduces_effective_bandwidth_on_scoped_links() {
        use crate::fault::{FaultPlan, FaultScope};
        use crate::id::SiteId;
        let mut net = testbed();
        let bytes = 21_575_000;
        let clean = net
            .send(SimTime::ZERO, NodeId(0), NodeId(2), bytes)
            .unwrap()
            .unwrap();
        net.reset_occupancy();
        net.set_fault_plan(FaultPlan::new(3).throttle(
            FaultScope::SitePair(SiteId(0), SiteId(1)),
            2.0,
            SimTime::ZERO,
            SimTime::from_secs_f64(100.0),
        ));
        let congested = net
            .send(SimTime::ZERO, NodeId(0), NodeId(2), bytes)
            .unwrap()
            .unwrap();
        let gap = (congested - clean).as_secs_f64();
        assert!(
            (gap - 0.1).abs() < 1e-3,
            "half bandwidth doubles 0.1s: {gap}"
        );
        assert_eq!(net.fault_plan().unwrap().stats().throttled, 1);
        // Intra-site traffic is outside the scope.
        net.reset_occupancy();
        let intra = net
            .send(SimTime::ZERO, NodeId(0), NodeId(1), bytes)
            .unwrap()
            .unwrap();
        let unthrottled = net.transfer_delay(NodeId(0), NodeId(1), bytes);
        assert_eq!(intra, SimTime::ZERO + unthrottled);
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = testbed();
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 100)
            .unwrap();
        net.reset_occupancy();
        assert_eq!(net.bytes_sent(), 0);
        assert_eq!(net.messages_sent(), 0);
        assert_eq!(net.uplink_free_at(NodeId(0)), SimTime::ZERO);
    }
}
