//! Network fault injection: seeded message loss, latency jitter, scheduled
//! link degradations, and site-pair partitions with heal times.
//!
//! A [`FaultPlan`] is attached to a [`Network`](crate::Network) and consulted
//! on every [`Network::send`](crate::Network::send). All randomness comes from
//! a dedicated [`DetRng`] substream derived from the plan's seed, so a run
//! with the same seed, plan, and message order replays bit-identically.
//!
//! Faults compose in a fixed order per message:
//!
//! 1. **Partition / blackout** — if the source and destination sites are
//!    separated by an active [`FaultPlan::partition`] window, or the message
//!    matches an active [`FaultPlan::blackout`] window (e.g. a cloud-uplink
//!    cut), the message is dropped (probability 1, no RNG draw).
//! 2. **Loss** — each matching [`FaultPlan::loss`] rule draws once; the
//!    message is dropped if any draw fires.
//! 3. **Degradation** — active [`FaultPlan::degrade`] windows scale the
//!    link's propagation latency (factors multiply when windows overlap).
//! 4. **Jitter** — each matching [`FaultPlan::jitter`] rule adds a uniform
//!    `[0, max_extra]` delay.
//! 5. **Bit rot** — each matching [`FaultPlan::bitrot`] rule draws once; if
//!    any draw fires the message is delivered *corrupted*
//!    ([`FaultOutcome::DeliverCorrupt`]) for the receiver's frame checksum
//!    to reject.
//!
//! Loopback traffic (`src == dst`) never traverses a link and is exempt from
//! all faults.

use crate::id::{NodeId, SiteId};
use ef_simcore::{DetRng, SimDuration, SimTime};

/// Which messages a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Every non-loopback message.
    All,
    /// Messages between the two sites, in either direction.
    SitePair(SiteId, SiteId),
    /// Messages touching the given site (as source or destination).
    Site(SiteId),
    /// Messages from the first node to the second (directed).
    Link(NodeId, NodeId),
    /// Messages sent by the given node.
    FromNode(NodeId),
    /// Messages received by the given node.
    ToNode(NodeId),
}

impl FaultScope {
    fn matches(&self, src: NodeId, dst: NodeId, src_site: SiteId, dst_site: SiteId) -> bool {
        match *self {
            FaultScope::All => true,
            FaultScope::SitePair(a, b) => {
                (src_site == a && dst_site == b) || (src_site == b && dst_site == a)
            }
            FaultScope::Site(s) => src_site == s || dst_site == s,
            FaultScope::Link(from, to) => src == from && dst == to,
            FaultScope::FromNode(n) => src == n,
            FaultScope::ToNode(n) => dst == n,
        }
    }
}

/// A half-open activity window `[from, until)`. `until = SimTime::MAX`
/// means "never ends".
#[derive(Debug, Clone, Copy)]
struct Window {
    from: SimTime,
    until: SimTime,
}

impl Window {
    fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

#[derive(Debug, Clone)]
struct LossRule {
    scope: FaultScope,
    window: Window,
    probability: f64,
}

#[derive(Debug, Clone)]
struct JitterRule {
    scope: FaultScope,
    window: Window,
    max_extra: SimDuration,
}

#[derive(Debug, Clone)]
struct DegradeRule {
    scope: FaultScope,
    window: Window,
    latency_factor: f64,
}

#[derive(Debug, Clone)]
struct BitRotRule {
    scope: FaultScope,
    window: Window,
    probability: f64,
}

#[derive(Debug, Clone)]
struct SlowRule {
    scope: FaultScope,
    window: Window,
    service_factor: f64,
}

#[derive(Debug, Clone)]
struct ThrottleRule {
    scope: FaultScope,
    window: Window,
    bandwidth_factor: f64,
}

#[derive(Debug, Clone)]
struct PartitionRule {
    a: SiteId,
    b: SiteId,
    window: Window,
}

#[derive(Debug, Clone)]
struct BlackoutRule {
    scope: FaultScope,
    window: Window,
}

/// A Byzantine behavior a compromised node exhibits inside a window.
///
/// Unlike every other fault family — which models *non-malicious*
/// degradation (loss, rot, slowness) — a Byzantine rule marks a node
/// that actively lies. The network itself never alters traffic for
/// these rules: they are pure oracles the cluster driver consults to
/// rewrite what the compromised node *would have sent*, so the rules
/// are zero-draw and leave every verdict trace bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineFault {
    /// The node answers dedup lookups for keys it does not hold with a
    /// fabricated positive sighting ("I already hold this fingerprint"),
    /// trying to suppress a client upload and silently lose the chunk.
    LieOnLookup,
    /// The node serves fabricated bytes on mesh-repair and restore
    /// fetches (repair responses and hint replays) instead of the chunk
    /// its content address names.
    ServeGarbage,
    /// The node claims divergent Merkle buckets during anti-entropy
    /// summary exchange that it cannot back with any entries.
    EquivocateSummary,
    /// The node floods peers with bogus hint replays for chunks nobody
    /// ever wrote, trying to pollute their indexes and waste repair
    /// bandwidth.
    HintFlood,
}

#[derive(Debug, Clone)]
struct ByzantineRule {
    node: NodeId,
    fault: ByzantineFault,
    window: Window,
}

/// Counters of what the plan did to traffic. Obtained via
/// [`FaultPlan::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by probabilistic loss rules.
    pub lost: u64,
    /// Messages dropped by an active partition.
    pub partitioned: u64,
    /// Messages whose latency was stretched by a degradation window.
    pub degraded: u64,
    /// Messages that received jitter.
    pub jittered: u64,
    /// Messages delivered with corrupted payload bits (wire bit rot).
    pub corrupted: u64,
    /// Messages whose service (serialization) time was stretched by a
    /// fail-slow node rule.
    pub slowed: u64,
    /// Messages whose serialization time was stretched by a congested-link
    /// bandwidth reduction.
    pub throttled: u64,
    /// Messages dropped by an active blackout window (e.g. a cloud-uplink
    /// cut during a disaster).
    pub blacked_out: u64,
}

impl FaultStats {
    /// Total messages dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.lost + self.partitioned + self.blacked_out
    }
}

/// Per-message verdict returned by [`FaultPlan::judge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// Deliver, with this much extra propagation delay (possibly zero).
    Deliver(SimDuration),
    /// Deliver with this much extra delay, but with payload bits flipped
    /// in flight (wire bit rot): the receiver's frame checksum is
    /// expected to reject it.
    DeliverCorrupt(SimDuration),
    /// The message is lost.
    Drop,
}

/// A deterministic, seeded schedule of network faults.
///
/// Built fluently, then attached with
/// [`Network::set_fault_plan`](crate::Network::set_fault_plan):
///
/// ```
/// use ef_netsim::{FaultPlan, FaultScope, SiteId};
/// use ef_simcore::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new(42)
///     .loss(FaultScope::All, 0.01)
///     .jitter(FaultScope::All, SimDuration::from_millis(2))
///     .partition(
///         SiteId(0),
///         SiteId(1),
///         SimTime::from_secs_f64(1.0),
///         SimTime::from_secs_f64(3.0),
///     );
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: DetRng,
    loss: Vec<LossRule>,
    jitter: Vec<JitterRule>,
    degrade: Vec<DegradeRule>,
    bitrot: Vec<BitRotRule>,
    partitions: Vec<PartitionRule>,
    blackouts: Vec<BlackoutRule>,
    slow: Vec<SlowRule>,
    throttle: Vec<ThrottleRule>,
    byzantine: Vec<ByzantineRule>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates an empty plan whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rng: DetRng::new(seed).substream("fault-plan"),
            loss: Vec::new(),
            jitter: Vec::new(),
            degrade: Vec::new(),
            bitrot: Vec::new(),
            partitions: Vec::new(),
            blackouts: Vec::new(),
            slow: Vec::new(),
            throttle: Vec::new(),
            byzantine: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a permanent loss rule: matching messages are dropped with
    /// `probability`.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not within `[0, 1]`.
    pub fn loss(self, scope: FaultScope, probability: f64) -> Self {
        self.loss_window(scope, probability, SimTime::ZERO, SimTime::MAX)
    }

    /// Adds a loss rule active during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not within `[0, 1]`.
    pub fn loss_window(
        mut self,
        scope: FaultScope,
        probability: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability {probability} outside [0, 1]"
        );
        self.loss.push(LossRule {
            scope,
            window: Window { from, until },
            probability,
        });
        self
    }

    /// Adds a permanent jitter rule: matching messages gain a uniform
    /// `[0, max_extra]` propagation delay.
    pub fn jitter(self, scope: FaultScope, max_extra: SimDuration) -> Self {
        self.jitter_window(scope, max_extra, SimTime::ZERO, SimTime::MAX)
    }

    /// Adds a jitter rule active during `[from, until)`.
    pub fn jitter_window(
        mut self,
        scope: FaultScope,
        max_extra: SimDuration,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.jitter.push(JitterRule {
            scope,
            window: Window { from, until },
            max_extra,
        });
        self
    }

    /// Schedules a link degradation: during `[from, until)` matching
    /// messages have their propagation latency multiplied by
    /// `latency_factor`.
    ///
    /// # Panics
    ///
    /// Panics when `latency_factor < 1`.
    pub fn degrade(
        mut self,
        scope: FaultScope,
        latency_factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            latency_factor >= 1.0,
            "degradation factor {latency_factor} < 1"
        );
        self.degrade.push(DegradeRule {
            scope,
            window: Window { from, until },
            latency_factor,
        });
        self
    }

    /// Adds a permanent bit-rot rule: matching messages are delivered
    /// with corrupted payload bits with `probability`.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not within `[0, 1]`.
    pub fn bitrot(self, scope: FaultScope, probability: f64) -> Self {
        self.bitrot_window(scope, probability, SimTime::ZERO, SimTime::MAX)
    }

    /// Adds a bit-rot rule active during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not within `[0, 1]`.
    pub fn bitrot_window(
        mut self,
        scope: FaultScope,
        probability: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "bit-rot probability {probability} outside [0, 1]"
        );
        self.bitrot.push(BitRotRule {
            scope,
            window: Window { from, until },
            probability,
        });
        self
    }

    /// Schedules a fail-slow window: during `[from, until)` matching
    /// messages have their service (serialization) time multiplied by
    /// `service_factor`. This models a gray node whose CPU or disk serves
    /// its uplink slower than its link speed suggests — the node is alive,
    /// answers heartbeats, but everything it transmits takes longer.
    ///
    /// The rule never draws from the plan's RNG, so adding one leaves the
    /// verdict trace of every other rule bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `service_factor < 1`.
    pub fn slow(
        mut self,
        scope: FaultScope,
        service_factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            service_factor >= 1.0,
            "fail-slow service factor {service_factor} < 1"
        );
        self.slow.push(SlowRule {
            scope,
            window: Window { from, until },
            service_factor,
        });
        self
    }

    /// Schedules a fail-slow window on everything `node` transmits — the
    /// common per-node service-rate multiplier form of [`FaultPlan::slow`].
    ///
    /// # Panics
    ///
    /// Panics when `service_factor < 1`.
    pub fn slow_node(
        self,
        node: NodeId,
        service_factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.slow(FaultScope::FromNode(node), service_factor, from, until)
    }

    /// Schedules a congested-link window: during `[from, until)` matching
    /// messages see their link's effective bandwidth divided by
    /// `bandwidth_factor` (serialization time multiplied by it).
    ///
    /// Like [`FaultPlan::slow`], the rule is zero-draw and replay-safe.
    ///
    /// # Panics
    ///
    /// Panics when `bandwidth_factor < 1`.
    pub fn throttle(
        mut self,
        scope: FaultScope,
        bandwidth_factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            bandwidth_factor >= 1.0,
            "throttle bandwidth factor {bandwidth_factor} < 1"
        );
        self.throttle.push(ThrottleRule {
            scope,
            window: Window { from, until },
            bandwidth_factor,
        });
        self
    }

    /// The combined service-time stretch factor for one message: the
    /// product of every matching fail-slow and throttle window at `now`
    /// (1.0 when none match). Consulted by the network *before* queuing
    /// the message on the sender's uplink, so a slow node's backlog grows
    /// exactly as a fail-slow disk or congested NIC would make it grow.
    ///
    /// Zero RNG draws: the query never perturbs the plan's verdict trace.
    pub fn service_factor(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        src_site: SiteId,
        dst_site: SiteId,
    ) -> f64 {
        let (slow, bandwidth) = self.service_factors(now, src, dst, src_site, dst_site);
        slow * bandwidth
    }

    /// Like [`FaultPlan::service_factor`], but keeps the two fault
    /// families apart: `(slow, bandwidth)`. A fail-slow node degrades
    /// everything it does — the network stretches its *whole* service
    /// leg (per-message processing and serialization alike), which is
    /// what makes a gray node visible even to small control RPCs. A
    /// congested link only divides bandwidth, so it stretches nothing
    /// but the bandwidth-proportional serialization time.
    ///
    /// Zero RNG draws, like `service_factor`.
    pub fn service_factors(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        src_site: SiteId,
        dst_site: SiteId,
    ) -> (f64, f64) {
        let mut slow_factor = 1.0f64;
        let mut slowed = false;
        for rule in &self.slow {
            if rule.window.contains(now) && rule.scope.matches(src, dst, src_site, dst_site) {
                slow_factor *= rule.service_factor;
                slowed = true;
            }
        }
        let mut bandwidth_factor = 1.0f64;
        let mut throttled = false;
        for rule in &self.throttle {
            if rule.window.contains(now) && rule.scope.matches(src, dst, src_site, dst_site) {
                bandwidth_factor *= rule.bandwidth_factor;
                throttled = true;
            }
        }
        if slowed {
            self.stats.slowed += 1;
        }
        if throttled {
            self.stats.throttled += 1;
        }
        (slow_factor, bandwidth_factor)
    }

    /// True when any fail-slow or throttle window covering traffic *from*
    /// `node` is active at `t` — the oracle tests and replica-steering
    /// heuristics use to ask "is this node gray right now?".
    pub fn is_slow_at(&self, node: NodeId, t: SimTime) -> bool {
        self.slow.iter().any(|r| {
            r.window.contains(t) && matches!(r.scope, FaultScope::FromNode(n) if n == node)
        })
    }

    /// Schedules a symmetric partition between sites `a` and `b` from
    /// `from` until it heals at `heal_at`. All messages between the two
    /// sites are dropped during the window.
    pub fn partition(mut self, a: SiteId, b: SiteId, from: SimTime, heal_at: SimTime) -> Self {
        self.partitions.push(PartitionRule {
            a,
            b,
            window: Window {
                from,
                until: heal_at,
            },
        });
        self
    }

    /// Schedules a blackout: during `[from, until)` every message matching
    /// `scope` is dropped unconditionally. This is the disaster form of
    /// loss — a cloud-uplink cut (`FaultScope::Site(cloud)`) or a severed
    /// link — and, unlike a probability-1.0 loss rule, it consumes **no**
    /// RNG draws, so adding one leaves every other rule's verdict trace
    /// bit-identical (same replay-safety contract as [`FaultPlan::slow`]).
    pub fn blackout(mut self, scope: FaultScope, from: SimTime, until: SimTime) -> Self {
        self.blackouts.push(BlackoutRule {
            scope,
            window: Window { from, until },
        });
        self
    }

    /// True when an active blackout window covers a message from `src` to
    /// `dst` at `t` — the oracle mitigations use to ask "is the uplink to
    /// this destination cut right now?".
    pub fn blacked_out(
        &self,
        src: NodeId,
        dst: NodeId,
        src_site: SiteId,
        dst_site: SiteId,
        t: SimTime,
    ) -> bool {
        self.blackouts
            .iter()
            .any(|r| r.window.contains(t) && r.scope.matches(src, dst, src_site, dst_site))
    }

    /// Schedules a Byzantine window: during `[from, until)` the given
    /// node exhibits `fault` (see [`ByzantineFault`]). The rule never
    /// touches traffic here — the network keeps delivering the liar's
    /// frames verbatim — and never draws from the plan's RNG, so adding
    /// one leaves every other rule's verdict trace bit-identical. The
    /// cluster driver consults the oracles below to decide what the
    /// compromised node fabricates.
    pub fn byzantine(
        mut self,
        node: NodeId,
        fault: ByzantineFault,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.byzantine.push(ByzantineRule {
            node,
            fault,
            window: Window { from, until },
        });
        self
    }

    /// True when `node` exhibits `fault` at `t`. Zero RNG draws.
    pub fn byzantine_at(&self, node: NodeId, fault: ByzantineFault, t: SimTime) -> bool {
        self.byzantine
            .iter()
            .any(|r| r.node == node && r.fault == fault && r.window.contains(t))
    }

    /// True when `node` fabricates positive dedup sightings at `t`.
    pub fn lies_on_lookup_at(&self, node: NodeId, t: SimTime) -> bool {
        self.byzantine_at(node, ByzantineFault::LieOnLookup, t)
    }

    /// True when `node` serves garbage on repair/restore fetches at `t`.
    pub fn serves_garbage_at(&self, node: NodeId, t: SimTime) -> bool {
        self.byzantine_at(node, ByzantineFault::ServeGarbage, t)
    }

    /// True when `node` equivocates anti-entropy summaries at `t`.
    pub fn equivocates_at(&self, node: NodeId, t: SimTime) -> bool {
        self.byzantine_at(node, ByzantineFault::EquivocateSummary, t)
    }

    /// True when `node` floods peers with bogus hints at `t`.
    pub fn hint_floods_at(&self, node: NodeId, t: SimTime) -> bool {
        self.byzantine_at(node, ByzantineFault::HintFlood, t)
    }

    /// Every node with at least one Byzantine rule, in any window —
    /// sorted and deduplicated. Sweep tests use this to assert that
    /// every injected liar was eventually quarantined.
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.byzantine.iter().map(|r| r.node).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// True when an active partition separates the two sites at `t`.
    pub fn partitioned(&self, a: SiteId, b: SiteId, t: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| p.window.contains(t) && ((p.a == a && p.b == b) || (p.a == b && p.b == a)))
    }

    /// Counters of everything the plan has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Resets counters (the RNG position is left alone).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Judges one message: called by
    /// [`Network::send`](crate::Network::send) for every non-loopback
    /// message, in simulation order. Draws from the plan's RNG only for
    /// matching probabilistic rules, so the verdict sequence is a pure
    /// function of (seed, plan, message sequence).
    pub fn judge(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        src_site: SiteId,
        dst_site: SiteId,
        base_latency: SimDuration,
    ) -> FaultOutcome {
        if self.partitioned(src_site, dst_site, now) {
            self.stats.partitioned += 1;
            return FaultOutcome::Drop;
        }
        // Blackouts are judged like partitions: unconditional, zero-draw.
        if self.blacked_out(src, dst, src_site, dst_site, now) {
            self.stats.blacked_out += 1;
            return FaultOutcome::Drop;
        }
        for rule in &self.loss {
            if rule.window.contains(now)
                && rule.scope.matches(src, dst, src_site, dst_site)
                && self.rng.unit() < rule.probability
            {
                self.stats.lost += 1;
                return FaultOutcome::Drop;
            }
        }
        let mut extra = SimDuration::ZERO;
        let mut factor = 1.0f64;
        for rule in &self.degrade {
            if rule.window.contains(now) && rule.scope.matches(src, dst, src_site, dst_site) {
                factor *= rule.latency_factor;
            }
        }
        if factor > 1.0 {
            self.stats.degraded += 1;
            extra += base_latency * (factor - 1.0);
        }
        for rule in &self.jitter {
            if rule.window.contains(now)
                && rule.scope.matches(src, dst, src_site, dst_site)
                && !rule.max_extra.is_zero()
            {
                self.stats.jittered += 1;
                extra += rule.max_extra * self.rng.unit();
            }
        }
        // Bit rot draws come last so plans without rot rules keep their
        // RNG trace (and thus all verdicts) bit-identical.
        for rule in &self.bitrot {
            if rule.window.contains(now)
                && rule.scope.matches(src, dst, src_site, dst_site)
                && self.rng.unit() < rule.probability
            {
                self.stats.corrupted += 1;
                return FaultOutcome::DeliverCorrupt(extra);
            }
        }
        FaultOutcome::Deliver(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judge_all(plan: &mut FaultPlan, n: usize, t: SimTime) -> Vec<FaultOutcome> {
        (0..n)
            .map(|_| {
                plan.judge(
                    t,
                    NodeId(0),
                    NodeId(2),
                    SiteId(0),
                    SiteId(1),
                    SimDuration::from_millis(5),
                )
            })
            .collect()
    }

    #[test]
    fn no_rules_always_delivers_clean() {
        let mut plan = FaultPlan::new(1);
        for o in judge_all(&mut plan, 100, SimTime::ZERO) {
            assert_eq!(o, FaultOutcome::Deliver(SimDuration::ZERO));
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn loss_is_seeded_and_replays() {
        let verdicts = |seed| {
            let mut plan = FaultPlan::new(seed).loss(FaultScope::All, 0.5);
            judge_all(&mut plan, 200, SimTime::ZERO)
        };
        assert_eq!(verdicts(7), verdicts(7), "same seed must replay");
        assert_ne!(verdicts(7), verdicts(8), "different seeds must differ");
        let mut plan = FaultPlan::new(7).loss(FaultScope::All, 0.5);
        let n_drop = judge_all(&mut plan, 400, SimTime::ZERO)
            .iter()
            .filter(|o| **o == FaultOutcome::Drop)
            .count();
        assert!((120..=280).contains(&n_drop), "drop count {n_drop}");
        assert_eq!(plan.stats().lost, n_drop as u64);
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let mut plan = FaultPlan::new(3).partition(
            SiteId(0),
            SiteId(1),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(2.0),
        );
        let before = SimTime::ZERO;
        let during = SimTime::from_secs_f64(1.5);
        let healed = SimTime::from_secs_f64(2.0);
        assert_eq!(
            judge_all(&mut plan, 1, before)[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
        assert_eq!(judge_all(&mut plan, 1, during)[0], FaultOutcome::Drop);
        // Symmetric: reverse direction also dropped.
        assert!(plan.partitioned(SiteId(1), SiteId(0), during));
        // Heal time is exclusive: at exactly `heal_at` traffic flows again.
        assert_eq!(
            judge_all(&mut plan, 1, healed)[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
        assert_eq!(plan.stats().partitioned, 1);
    }

    #[test]
    fn degradation_scales_latency_in_window() {
        let mut plan = FaultPlan::new(5).degrade(
            FaultScope::SitePair(SiteId(0), SiteId(1)),
            3.0,
            SimTime::ZERO,
            SimTime::from_secs_f64(10.0),
        );
        let base = SimDuration::from_millis(5);
        match judge_all(&mut plan, 1, SimTime::ZERO)[0] {
            FaultOutcome::Deliver(extra) => {
                // factor 3 → extra = 2 * base
                assert!((extra.as_millis_f64() - 2.0 * base.as_millis_f64()).abs() < 1e-6);
            }
            FaultOutcome::Drop | FaultOutcome::DeliverCorrupt(_) => {
                panic!("degradation must not drop or corrupt")
            }
        }
        // Outside the window: clean.
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::from_secs_f64(10.0))[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
    }

    #[test]
    fn jitter_bounded_and_seeded() {
        let max = SimDuration::from_millis(4);
        let mut plan = FaultPlan::new(11).jitter(FaultScope::All, max);
        let mut seen_nonzero = false;
        for o in judge_all(&mut plan, 50, SimTime::ZERO) {
            match o {
                FaultOutcome::Deliver(extra) => {
                    assert!(extra <= max, "jitter {extra} exceeds bound");
                    seen_nonzero |= !extra.is_zero();
                }
                FaultOutcome::Drop | FaultOutcome::DeliverCorrupt(_) => {
                    panic!("jitter must not drop or corrupt")
                }
            }
        }
        assert!(seen_nonzero, "jitter never fired");
        assert_eq!(plan.stats().jittered, 50);
    }

    #[test]
    fn scopes_select_the_right_traffic() {
        let src = NodeId(0);
        let dst = NodeId(2);
        let (ss, ds) = (SiteId(0), SiteId(1));
        let hit = |scope: FaultScope| scope.matches(src, dst, ss, ds);
        assert!(hit(FaultScope::All));
        assert!(hit(FaultScope::SitePair(ds, ss)));
        assert!(!hit(FaultScope::SitePair(ss, SiteId(9))));
        assert!(hit(FaultScope::Site(ss)));
        assert!(!hit(FaultScope::Site(SiteId(9))));
        assert!(hit(FaultScope::Link(src, dst)));
        assert!(!hit(FaultScope::Link(dst, src)));
        assert!(hit(FaultScope::FromNode(src)));
        assert!(!hit(FaultScope::FromNode(dst)));
        assert!(hit(FaultScope::ToNode(dst)));
        assert!(!hit(FaultScope::ToNode(src)));
    }

    #[test]
    fn bitrot_corrupts_seeded_fraction_without_dropping() {
        let verdicts = |seed| {
            let mut plan = FaultPlan::new(seed).bitrot(FaultScope::All, 0.25);
            judge_all(&mut plan, 200, SimTime::ZERO)
        };
        assert_eq!(verdicts(7), verdicts(7), "same seed must replay");
        assert_ne!(verdicts(7), verdicts(8), "different seeds must differ");
        let mut plan = FaultPlan::new(7).bitrot(FaultScope::All, 0.25);
        let out = judge_all(&mut plan, 400, SimTime::ZERO);
        let n_rotted = out
            .iter()
            .filter(|o| matches!(o, FaultOutcome::DeliverCorrupt(_)))
            .count();
        assert!(out.iter().all(|o| *o != FaultOutcome::Drop));
        assert!((50..=160).contains(&n_rotted), "rot count {n_rotted}");
        assert_eq!(plan.stats().corrupted, n_rotted as u64);
        assert_eq!(plan.stats().dropped(), 0, "rot must not count as loss");
    }

    #[test]
    fn bitrot_window_scopes_in_time() {
        let mut plan = FaultPlan::new(9).bitrot_window(
            FaultScope::All,
            1.0,
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(2.0),
        );
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::ZERO)[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::from_secs_f64(1.5))[0],
            FaultOutcome::DeliverCorrupt(SimDuration::ZERO)
        );
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::from_secs_f64(2.0))[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
    }

    #[test]
    fn bitrot_rules_leave_clean_plan_traces_untouched() {
        // A plan with loss+jitter must produce the same verdicts whether
        // or not a (never-matching) bit-rot rule exists: rot draws come
        // after all legacy draws and only for matching rules.
        let base = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2));
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        let with_rot = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2))
                .bitrot(FaultScope::ToNode(NodeId(99)), 1.0);
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        assert_eq!(base(21), with_rot(21));
    }

    #[test]
    fn slow_and_throttle_factors_compose_in_window() {
        let mut plan = FaultPlan::new(13)
            .slow_node(NodeId(0), 3.0, SimTime::ZERO, SimTime::from_secs_f64(10.0))
            .throttle(
                FaultScope::SitePair(SiteId(0), SiteId(1)),
                2.0,
                SimTime::ZERO,
                SimTime::from_secs_f64(10.0),
            );
        let f = plan.service_factor(SimTime::ZERO, NodeId(0), NodeId(2), SiteId(0), SiteId(1));
        assert!((f - 6.0).abs() < 1e-9, "factors must multiply, got {f}");
        assert_eq!(plan.stats().slowed, 1);
        assert_eq!(plan.stats().throttled, 1);
        // Outside the window: clean, no stats movement.
        let f = plan.service_factor(
            SimTime::from_secs_f64(10.0),
            NodeId(0),
            NodeId(2),
            SiteId(0),
            SiteId(1),
        );
        assert!((f - 1.0).abs() < 1e-9);
        assert_eq!(plan.stats().slowed, 1);
        // Wrong direction for the FromNode slow rule: only the throttle fires.
        let f = plan.service_factor(SimTime::ZERO, NodeId(2), NodeId(0), SiteId(1), SiteId(0));
        assert!((f - 2.0).abs() < 1e-9);
        assert_eq!(plan.stats().slowed, 1);
        assert_eq!(plan.stats().throttled, 2);
        assert!(plan.is_slow_at(NodeId(0), SimTime::ZERO));
        assert!(!plan.is_slow_at(NodeId(2), SimTime::ZERO));
        assert!(!plan.is_slow_at(NodeId(0), SimTime::from_secs_f64(10.0)));
    }

    #[test]
    fn slow_rules_leave_clean_plan_traces_untouched() {
        // Fail-slow and throttle rules are zero-draw: interleaving
        // service-factor queries with judged traffic must not perturb the
        // verdict trace of a probabilistic plan.
        let base = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2));
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        let with_slow = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2))
                .slow_node(NodeId(0), 4.0, SimTime::ZERO, SimTime::MAX)
                .throttle(FaultScope::All, 2.0, SimTime::ZERO, SimTime::MAX);
            (0..100)
                .map(|_| {
                    // A matching query between every judged message.
                    plan.service_factor(SimTime::ZERO, NodeId(0), NodeId(2), SiteId(0), SiteId(1));
                    plan.judge(
                        SimTime::ZERO,
                        NodeId(0),
                        NodeId(2),
                        SiteId(0),
                        SiteId(1),
                        SimDuration::from_millis(5),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(base(21), with_slow(21));
    }

    #[test]
    fn blackout_window_drops_unconditionally_then_heals() {
        let mut plan = FaultPlan::new(17).blackout(
            FaultScope::Site(SiteId(1)),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(2.0),
        );
        let during = SimTime::from_secs_f64(1.5);
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::ZERO)[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
        for o in judge_all(&mut plan, 20, during) {
            assert_eq!(o, FaultOutcome::Drop);
        }
        assert!(plan.blacked_out(NodeId(0), NodeId(2), SiteId(0), SiteId(1), during));
        // Heal time is exclusive, like partitions.
        assert_eq!(
            judge_all(&mut plan, 1, SimTime::from_secs_f64(2.0))[0],
            FaultOutcome::Deliver(SimDuration::ZERO)
        );
        assert_eq!(plan.stats().blacked_out, 20);
        assert_eq!(plan.stats().dropped(), 20);
        // Traffic not touching the blacked-out site is unaffected.
        assert!(!plan.blacked_out(NodeId(0), NodeId(1), SiteId(0), SiteId(0), during));
    }

    #[test]
    fn blackout_rules_leave_clean_plan_traces_untouched() {
        // Blackouts are zero-draw: a plan with probabilistic rules must
        // produce the same verdicts whether or not a (never-matching)
        // blackout exists — unlike a probability-1.0 loss rule, which
        // would consume one draw per message.
        let base = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2));
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        let with_blackout = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2))
                .blackout(FaultScope::Site(SiteId(9)), SimTime::ZERO, SimTime::MAX);
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        assert_eq!(base(21), with_blackout(21));
    }

    #[test]
    fn byzantine_windows_scope_in_time_and_by_behavior() {
        let liar = NodeId(1);
        let honest = NodeId(2);
        let from = SimTime::from_secs_f64(1.0);
        let until = SimTime::from_secs_f64(2.0);
        let plan = FaultPlan::new(19)
            .byzantine(liar, ByzantineFault::LieOnLookup, from, until)
            .byzantine(liar, ByzantineFault::ServeGarbage, from, until)
            .byzantine(liar, ByzantineFault::EquivocateSummary, from, until)
            .byzantine(liar, ByzantineFault::HintFlood, from, until);
        let mid = SimTime::from_secs_f64(1.5);
        assert!(plan.lies_on_lookup_at(liar, mid));
        assert!(plan.serves_garbage_at(liar, mid));
        assert!(plan.equivocates_at(liar, mid));
        assert!(plan.hint_floods_at(liar, mid));
        // Half-open window: active at `from`, healed at `until`.
        assert!(plan.lies_on_lookup_at(liar, from));
        assert!(!plan.lies_on_lookup_at(liar, until));
        assert!(!plan.lies_on_lookup_at(liar, SimTime::ZERO));
        // An honest node never matches, and behaviors don't bleed: a
        // lookup liar without a garbage rule serves honest bytes.
        assert!(!plan.lies_on_lookup_at(honest, mid));
        let lookup_only =
            FaultPlan::new(20).byzantine(liar, ByzantineFault::LieOnLookup, from, until);
        assert!(lookup_only.lies_on_lookup_at(liar, mid));
        assert!(!lookup_only.serves_garbage_at(liar, mid));
        assert_eq!(plan.byzantine_nodes(), vec![liar]);
        assert!(lookup_only.byzantine_nodes().contains(&liar));
    }

    #[test]
    fn byzantine_rules_leave_clean_plan_traces_untouched() {
        // Byzantine rules are pure oracles: the network neither drops nor
        // rewrites the liar's frames, so a plan with probabilistic rules
        // must produce the same verdicts whether or not Byzantine windows
        // exist — even with oracle queries interleaved between messages.
        let base = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2));
            judge_all(&mut plan, 100, SimTime::ZERO)
        };
        let with_byzantine = |seed| {
            let mut plan = FaultPlan::new(seed)
                .loss(FaultScope::All, 0.3)
                .jitter(FaultScope::All, SimDuration::from_millis(2))
                .byzantine(
                    NodeId(0),
                    ByzantineFault::LieOnLookup,
                    SimTime::ZERO,
                    SimTime::MAX,
                )
                .byzantine(
                    NodeId(0),
                    ByzantineFault::HintFlood,
                    SimTime::ZERO,
                    SimTime::MAX,
                );
            (0..100)
                .map(|_| {
                    // Oracle queries between every judged message.
                    plan.lies_on_lookup_at(NodeId(0), SimTime::ZERO);
                    plan.equivocates_at(NodeId(0), SimTime::ZERO);
                    plan.judge(
                        SimTime::ZERO,
                        NodeId(0),
                        NodeId(2),
                        SiteId(0),
                        SiteId(1),
                        SimDuration::from_millis(5),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(base(21), with_byzantine(21));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_probability() {
        FaultPlan::new(0).loss(FaultScope::All, 1.5);
    }

    #[test]
    #[should_panic(expected = "service factor")]
    fn rejects_speedup_slow_rule() {
        FaultPlan::new(0).slow_node(NodeId(0), 0.9, SimTime::ZERO, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn rejects_speedup_throttle_rule() {
        FaultPlan::new(0).throttle(FaultScope::All, 0.5, SimTime::ZERO, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "bit-rot probability")]
    fn rejects_bad_bitrot_probability() {
        FaultPlan::new(0).bitrot(FaultScope::All, -0.1);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_speedup_degradation() {
        FaultPlan::new(0).degrade(FaultScope::All, 0.5, SimTime::ZERO, SimTime::MAX);
    }
}
