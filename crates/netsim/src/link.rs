//! Link parameters and NetEm-style network configuration.

use ef_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of a (directed) network path: propagation latency and
/// bandwidth. Mirrors what the paper controls with NetEm plus the measured
/// testbed bandwidths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkParams {
    /// Creates link parameters.
    ///
    /// # Panics
    ///
    /// Panics when `bandwidth_bps` is not positive and finite.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "invalid bandwidth {bandwidth_bps}"
        );
        LinkParams {
            latency,
            bandwidth_bps,
        }
    }

    /// Convenience constructor from milliseconds and gigabits per second.
    pub fn from_ms_gbps(latency_ms: f64, gbps: f64) -> Self {
        LinkParams::new(SimDuration::from_secs_f64(latency_ms / 1e3), gbps * 1e9)
    }

    /// Serialization (transmission) delay of `bytes` on this link.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Total unloaded transfer time: latency plus serialization.
    pub fn transfer_delay(&self, bytes: u64) -> SimDuration {
        self.latency + self.serialization_delay(bytes)
    }
}

/// The site-level network configuration: which [`LinkParams`] apply to a
/// given pair of sites.
///
/// Three classes of paths exist in the paper's testbed, each with its own
/// parameters:
///
/// * within one edge cloud (`intra_site`),
/// * between two edge clouds (`inter_edge`),
/// * between an edge cloud and the central cloud (`wan`).
///
/// Paths inside the central cloud also use `intra_site`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Path between two nodes in the same site.
    pub intra_site: LinkParams,
    /// Path between two different edge clouds.
    pub inter_edge: LinkParams,
    /// Path between an edge cloud and the central cloud.
    pub wan: LinkParams,
    /// Loopback "path" from a node to itself (local lookup). Latency is the
    /// local-processing floor; bandwidth is effectively memory speed.
    pub loopback: LinkParams,
}

impl NetworkConfig {
    /// The paper's measured testbed profile (Sec. V):
    /// intra-edge 0.85 ms / 1.726 Gbps, WAN 12.2 ms / 0.377 Gbps,
    /// inter-edge-cloud 5 ms (the Fig. 6 default) at intra-edge bandwidth.
    pub fn paper_testbed() -> Self {
        NetworkConfig {
            intra_site: LinkParams::from_ms_gbps(0.85, 1.726),
            inter_edge: LinkParams::from_ms_gbps(5.0, 1.726),
            wan: LinkParams::from_ms_gbps(12.2, 0.377),
            loopback: LinkParams::from_ms_gbps(0.01, 100.0),
        }
    }

    /// Returns a copy with a different inter-edge-cloud latency — the knob
    /// the paper turns with NetEm in Fig. 6.
    pub fn with_inter_edge_latency_ms(mut self, ms: f64) -> Self {
        self.inter_edge = LinkParams::from_ms_gbps(ms, self.inter_edge.bandwidth_bps / 1e9);
        self
    }

    /// Returns a copy with a different edge↔cloud (WAN) latency — the knob
    /// of Fig. 5(b).
    pub fn with_wan_latency_ms(mut self, ms: f64) -> Self {
        self.wan = LinkParams::from_ms_gbps(ms, self.wan.bandwidth_bps / 1e9);
        self
    }
}

impl Default for NetworkConfig {
    /// The paper's testbed profile.
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_with_bytes() {
        let link = LinkParams::from_ms_gbps(1.0, 1.0); // 1 Gbps
                                                       // 125 MB at 1 Gbps = 1 s.
        let d = link.serialization_delay(125_000_000);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_includes_latency() {
        let link = LinkParams::from_ms_gbps(10.0, 1.0);
        let d = link.transfer_delay(0);
        assert!((d.as_millis_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_testbed_values() {
        let cfg = NetworkConfig::paper_testbed();
        assert!((cfg.intra_site.latency.as_millis_f64() - 0.85).abs() < 1e-9);
        assert!((cfg.wan.latency.as_millis_f64() - 12.2).abs() < 1e-9);
        assert!((cfg.wan.bandwidth_bps - 0.377e9).abs() < 1.0);
    }

    #[test]
    fn netem_knobs() {
        let cfg = NetworkConfig::paper_testbed()
            .with_inter_edge_latency_ms(30.0)
            .with_wan_latency_ms(100.0);
        assert!((cfg.inter_edge.latency.as_millis_f64() - 30.0).abs() < 1e-9);
        assert!((cfg.wan.latency.as_millis_f64() - 100.0).abs() < 1e-9);
        // Bandwidths preserved.
        assert!((cfg.inter_edge.bandwidth_bps - 1.726e9).abs() < 1.0);
        assert!((cfg.wan.bandwidth_bps - 0.377e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn rejects_zero_bandwidth() {
        LinkParams::new(SimDuration::ZERO, 0.0);
    }
}
