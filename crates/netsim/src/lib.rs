//! # ef-netsim — edge/WAN network simulation substrate
//!
//! Models the network of the paper's testbed (Sec. V): edge nodes grouped
//! into *sites* (edge clouds), a central cloud site, and NetEm-style link
//! parameters (latency, jitter, bandwidth) between them. The paper's
//! measured values are provided as presets:
//!
//! * intra-edge-cloud: 0.85 ms latency, 1.726 Gbps,
//! * edge ↔ central cloud (WAN): 12.2 ms latency, 0.377 Gbps,
//! * inter-edge-cloud: configurable (the paper sweeps 5–30 ms with NetEm).
//!
//! The substrate offers two views used by different layers:
//!
//! * an **analytic view** ([`Network::oneway_delay`], [`Network::rtt`],
//!   [`Network::cost_matrix`]) that yields the `v_ij` network-cost inputs
//!   of the SNOD2 optimization, and
//! * an **occupancy view** ([`Network::transfer`]) that serializes bytes
//!   through per-link FIFO servers so sustained flows saturate links — the
//!   effect that throttles the Cloud-only baseline in Fig. 5.
//!
//! On top of both sits a **chaos layer**: a seeded [`FaultPlan`] attached to
//! the network injects message loss, latency jitter, scheduled link
//! degradations, site-pair partitions with heal times, and wire bit rot.
//! Fault-aware callers use [`Network::send`], which returns `None` for lost
//! messages; checksum-aware callers use [`Network::send_framed`], which also
//! flags frames corrupted in flight. Everything is driven by a deterministic
//! RNG so runs replay bit-identically from a seed.
//!
//! # Example
//!
//! ```
//! use ef_netsim::{TopologyBuilder, LinkParams, Network, NetworkConfig};
//! use ef_simcore::SimDuration;
//!
//! let topo = TopologyBuilder::new()
//!     .edge_site(2)      // one edge cloud with two nodes
//!     .edge_site(1)      // another with one node
//!     .cloud_site(1)     // the central cloud
//!     .build();
//! let net = Network::new(topo, NetworkConfig::paper_testbed());
//! let nodes = net.topology().edge_nodes();
//! // Same-site lookup is fast; cross-site pays the inter-cloud latency.
//! assert!(net.rtt(nodes[0], nodes[1]) < net.rtt(nodes[0], nodes[2]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod id;
mod link;
mod network;
mod topology;

pub use fault::{ByzantineFault, FaultOutcome, FaultPlan, FaultScope, FaultStats};
pub use id::{NodeId, SiteId};
pub use link::{LinkParams, NetworkConfig};
pub use network::{Delivery, Network, NetworkError};
pub use topology::{SiteKind, Topology, TopologyBuilder};
