//! Property tests for the network substrate.

use ef_netsim::{Network, NetworkConfig, NodeId, TopologyBuilder};
use ef_simcore::SimTime;
use proptest::prelude::*;

fn build_network(sites: usize, per_site: usize, cloud: usize) -> Network {
    let mut b = TopologyBuilder::new();
    for _ in 0..sites {
        b = b.edge_site(per_site);
    }
    if cloud > 0 {
        b = b.cloud_site(cloud);
    }
    Network::new(b.build(), NetworkConfig::paper_testbed())
}

proptest! {
    /// RTTs are symmetric, zero on the diagonal, and classify paths
    /// correctly: loopback < intra-site < inter-edge < WAN.
    #[test]
    fn rtt_structure(sites in 1usize..6, per_site in 1usize..4, cloud in 1usize..3) {
        let net = build_network(sites, per_site, cloud);
        let nodes: Vec<NodeId> = net.topology().nodes().collect();
        for &a in &nodes {
            prop_assert_eq!(net.rtt(a, a), net.rtt(a, a));
            for &b in &nodes {
                prop_assert_eq!(net.rtt(a, b), net.rtt(b, a), "asymmetric rtt");
                if a != b {
                    prop_assert!(net.rtt(a, b) > net.rtt(a, a), "loopback not cheapest");
                }
            }
        }
        // WAN paths are the most expensive class in the default profile.
        let edge = net.topology().edge_nodes();
        let clouds = net.topology().cloud_nodes();
        if let (Some(&e), Some(&c)) = (edge.first(), clouds.first()) {
            for &other in &edge[1..] {
                prop_assert!(net.rtt(e, c) >= net.rtt(e, other));
            }
        }
    }

    /// The cost matrix equals pairwise RTTs in milliseconds and is
    /// symmetric with a zero diagonal for any node subset.
    #[test]
    fn cost_matrix_consistent(sites in 1usize..5, per_site in 1usize..4) {
        let net = build_network(sites, per_site, 1);
        let nodes = net.topology().edge_nodes();
        let m = net.cost_matrix(&nodes);
        for (i, &a) in nodes.iter().enumerate() {
            prop_assert_eq!(m[i][i], 0.0);
            for (j, &b) in nodes.iter().enumerate() {
                prop_assert_eq!(m[i][j], m[j][i]);
                if i != j {
                    prop_assert!((m[i][j] - net.rtt(a, b).as_millis_f64()).abs() < 1e-12);
                }
            }
        }
    }

    /// Uplink occupancy: sequential transfers from one node never
    /// overlap, and total bytes are conserved.
    #[test]
    fn uplink_serialization(
        transfers in proptest::collection::vec(1u64..5_000_000, 1..30)
    ) {
        let mut net = build_network(1, 2, 0);
        let (a, b) = (NodeId(0), NodeId(1));
        let mut last_arrival = SimTime::ZERO;
        let mut total = 0u64;
        for &bytes in &transfers {
            let arrival = net.transfer(SimTime::ZERO, a, b, bytes).unwrap();
            prop_assert!(arrival >= last_arrival, "transfers reordered");
            last_arrival = arrival;
            total += bytes;
        }
        prop_assert_eq!(net.bytes_sent(), total);
        prop_assert_eq!(net.messages_sent(), transfers.len() as u64);
        // The last arrival is at least the pure serialization time of
        // all bytes at link bandwidth.
        let link = net.link(a, b);
        let min_secs = total as f64 * 8.0 / link.bandwidth_bps;
        prop_assert!(last_arrival.as_secs_f64() >= min_secs * 0.999);
    }

    /// Topology invariants: dense ids, consistent site membership.
    #[test]
    fn topology_invariants(sites in 1usize..7, per_site in 1usize..5) {
        let net = build_network(sites, per_site, 2);
        let topo = net.topology();
        prop_assert_eq!(topo.node_count(), sites * per_site + 2);
        prop_assert_eq!(topo.edge_nodes().len(), sites * per_site);
        prop_assert_eq!(topo.cloud_nodes().len(), 2);
        for node in topo.nodes() {
            let site = topo.site_of(node);
            prop_assert!(topo.nodes_in(site).contains(&node));
        }
        for site in topo.edge_sites() {
            prop_assert_eq!(topo.nodes_in(site).len(), per_site);
        }
    }
}
