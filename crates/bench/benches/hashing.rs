//! SHA-256 micro-benchmarks (the in-repo implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ef_chunking::Sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4 * 1024, 128 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("digest", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    group.finish();
}

fn bench_sha256_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256-batch");
    for size in [4 * 1024usize, 128 * 1024] {
        // 64 equal-size messages: the block-parallel wide path at full
        // occupancy, the shape the chunking pipeline produces.
        let bufs: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; size]).collect();
        let slices: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        group.throughput(Throughput::Bytes((size * slices.len()) as u64));
        group.bench_with_input(BenchmarkId::new("digest_batch", size), &slices, |b, s| {
            b.iter(|| Sha256::digest_batch(s).len())
        });
        group.bench_with_input(BenchmarkId::new("digest_scalar", size), &slices, |b, s| {
            b.iter(|| {
                s.iter()
                    .map(|m| Sha256::digest(m)[0] as usize)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_sha256_batch);
criterion_main!(benches);
