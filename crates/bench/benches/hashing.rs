//! SHA-256 micro-benchmarks (the in-repo implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ef_chunking::Sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 4 * 1024, 128 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("digest", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256);
criterion_main!(benches);
