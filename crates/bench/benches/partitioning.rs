//! Partitioner micro-benchmarks: SMART and its variants at testbed and
//! simulation scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efdedup::experiments::{scale_instance, DatasetKind};
use efdedup::partition::{
    DedupOnly, EqualSizeGreedy, MatchingPartitioner, NetworkOnly, Partitioner, SmartGreedy,
};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    for n in [20usize, 100] {
        let inst = scale_instance(DatasetKind::Accelerometer, n, 100.0, 0.001, 10, 7);
        let algos: Vec<(&str, Box<dyn Partitioner>)> = vec![
            ("smart", Box::new(SmartGreedy)),
            ("equal-size", Box::new(EqualSizeGreedy)),
            ("matching", Box::new(MatchingPartitioner::default())),
            ("network-only", Box::new(NetworkOnly)),
            ("dedup-only", Box::new(DedupOnly)),
        ];
        for (name, algo) in &algos {
            group.bench_with_input(BenchmarkId::new(*name, n), &inst, |b, inst| {
                b.iter(|| algo.partition(inst, 5).ring_count())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
