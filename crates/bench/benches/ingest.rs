//! End-to-end ingest micro-benchmark: chunk, fingerprint, and dedup-check
//! a stream through the sharded fingerprint cache and a local index —
//! the agent-side leg of check-and-insert. `bench_ingest` (src/bin) is
//! the measured-record counterpart; this keeps the same pipeline under
//! Criterion's statistics for CI trend tracking.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ef_chunking::{Chunker, ChunkerKind};
use ef_kvstore::FingerprintCache;
use std::collections::BTreeSet;

fn test_data(len: usize) -> Vec<u8> {
    let mut state = 0x9e37_79b9_u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

fn ingest(chunker: &ChunkerKind, data: &[u8], cache: Option<usize>) -> usize {
    let mut cache = cache.map(|per_shard| FingerprintCache::new(8, per_shard));
    let mut index: BTreeSet<[u8; 32]> = BTreeSet::new();
    for chunk in chunker.chunk(data) {
        let key = *chunk.hash.as_bytes();
        if let Some(cache) = cache.as_mut() {
            if cache.contains(&key) {
                continue;
            }
            cache.insert(Bytes::copy_from_slice(&key));
        }
        index.insert(key);
    }
    index.len()
}

fn bench_ingest(c: &mut Criterion) {
    let data = test_data(8 << 20);
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Bytes(data.len() as u64));

    for chunker in [
        ChunkerKind::fixed(4096).expect("valid"),
        ChunkerKind::gear_sized(4096).expect("valid"),
    ] {
        group.bench_with_input(
            BenchmarkId::new(chunker.label(), "cache-off"),
            &data,
            |b, d| b.iter(|| ingest(&chunker, d, None)),
        );
        group.bench_with_input(
            BenchmarkId::new(chunker.label(), "cache-on"),
            &data,
            |b, d| b.iter(|| ingest(&chunker, d, Some(1 << 11))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
