//! SNOD2 model micro-benchmarks: Theorem 1 evaluation and full partition
//! costing — the inner loop of every partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use efdedup::experiments::{scale_instance, DatasetKind};
use efdedup::partition::Partition;

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("snod2-model");
    for n in [20usize, 100, 500] {
        let inst = scale_instance(DatasetKind::Accelerometer, n, 100.0, 0.001, 20, 7);
        let set: Vec<usize> = (0..n / 2).collect();
        group.bench_with_input(BenchmarkId::new("dedup-ratio", n), &inst, |b, inst| {
            b.iter(|| inst.dedup_ratio(&set))
        });
        let rings: Vec<Vec<usize>> = (0..10)
            .map(|r| (0..n).filter(|i| i % 10 == r).collect())
            .collect();
        let partition = Partition::new(rings).unwrap();
        group.bench_with_input(BenchmarkId::new("total-cost", n), &inst, |b, inst| {
            b.iter(|| inst.total_cost(&partition))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
