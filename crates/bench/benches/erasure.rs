//! Erasure-coding micro-benchmarks + the replication-vs-erasure storage
//! ablation (the paper's future-work extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ef_erasure::ReedSolomon;

fn bench_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed-solomon");
    let data = vec![0x5au8; 64 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (k, m) in [(4usize, 2usize), (8, 3), (10, 4)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{k}+{m}")),
            &data,
            |b, d| b.iter(|| rs.encode(d).unwrap().len()),
        );
        let shards = rs.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        // Worst case: lose m data shards, reconstruct from parity.
        for slot in received.iter_mut().take(m) {
            *slot = None;
        }
        group.bench_with_input(
            BenchmarkId::new("reconstruct", format!("{k}+{m}")),
            &received,
            |b, r| b.iter(|| rs.reconstruct(r, data.len()).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_erasure);
criterion_main!(benches);
