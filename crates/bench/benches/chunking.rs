//! Chunking substrate micro-benchmarks: fixed-size vs content-defined.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ef_chunking::{Chunker, FixedChunker, GearChunkerBuilder};

fn test_data(len: usize) -> Vec<u8> {
    let mut state = 0x1234_5678_u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

fn bench_chunkers(c: &mut Criterion) {
    let data = test_data(4 << 20);
    let mut group = c.benchmark_group("chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));

    for size in [4 * 1024, 128 * 1024] {
        let chunker = FixedChunker::new(size).unwrap();
        group.bench_with_input(BenchmarkId::new("fixed", size), &data, |b, d| {
            b.iter(|| chunker.chunk(d).len())
        });
    }

    let cdc = GearChunkerBuilder::new()
        .min_size(2 * 1024)
        .target_size(8 * 1024)
        .max_size(64 * 1024)
        .build()
        .unwrap();
    group.bench_with_input(BenchmarkId::new("gear-cdc", 8192), &data, |b, d| {
        b.iter(|| cdc.chunk(d).len())
    });
    // The seed byte-at-a-time pipeline, kept as the fast path's baseline.
    group.bench_with_input(BenchmarkId::new("gear-cdc-seed", 8192), &data, |b, d| {
        b.iter(|| cdc.chunk_reference(d).len())
    });
    // Boundary scan alone (no fingerprinting): the quad gear scanner.
    group.bench_with_input(BenchmarkId::new("gear-scan", 8192), &data, |b, d| {
        b.iter(|| cdc.boundaries(d).len())
    });

    group.finish();
}

criterion_group!(benches, bench_chunkers);
criterion_main!(benches);
