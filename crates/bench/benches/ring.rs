//! Consistent-hash-ring micro-benchmarks: replica lookup and membership
//! change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ef_kvstore::HashRing;
use ef_netsim::NodeId;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash-ring");
    for nodes in [5usize, 20, 100] {
        let ring = HashRing::with_nodes((0..nodes as u32).map(NodeId), 64);
        group.bench_with_input(BenchmarkId::new("replicas-rf2", nodes), &ring, |b, ring| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                ring.replicas(&i.to_be_bytes(), 2)
            })
        });
    }
    group.bench_function("add-remove-node-100", |b| {
        b.iter(|| {
            let mut ring = HashRing::with_nodes((0..100u32).map(NodeId), 64);
            ring.remove_node(NodeId(50));
            ring.add_node(NodeId(50));
            ring.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
