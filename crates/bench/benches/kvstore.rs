//! Distributed key-value store micro-benchmarks: the dedup primitive
//! (lookup + insert) on an in-process cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ef_kvstore::{ClusterConfig, LocalCluster};
use ef_netsim::NodeId;

fn bench_check_and_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    for nodes in [3usize, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("check-and-insert", nodes),
            &nodes,
            |b, &n| {
                let mut cluster = LocalCluster::new(
                    (0..n as u32).map(NodeId).collect(),
                    ClusterConfig::default(),
                );
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    cluster
                        .check_and_insert(
                            NodeId((i % n as u64) as u32),
                            &i.to_be_bytes(),
                            Bytes::from_static(&[1]),
                        )
                        .unwrap()
                })
            },
        );
    }
    group.bench_function("duplicate-lookup-10", |b| {
        let mut cluster =
            LocalCluster::new((0..10u32).map(NodeId).collect(), ClusterConfig::default());
        cluster
            .put(NodeId(0), b"hot-key", Bytes::from_static(&[1]))
            .unwrap();
        b.iter(|| cluster.get(NodeId(3), b"hot-key").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_check_and_insert);
criterion_main!(benches);
