//! Fig. 6(b): dedup throughput vs ring count for several inter-edge-cloud
//! latencies (20 nodes in 10 edge clouds).
//!
//! Paper result: at ≤ 15 ms inter-cloud latency, larger rings (fewer of
//! them) win — the dedup gain outweighs the lookup cost; above 15 ms the
//! trend flips.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{tradeoff_sweep, DatasetKind, SweepConfig};

fn main() {
    let rings: &[usize] = if quick_mode() {
        &[2, 10]
    } else {
        &[1, 2, 4, 5, 10]
    };
    let lats: &[f64] = if quick_mode() {
        &[5.0, 30.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0, 30.0]
    };
    let sweep = SweepConfig {
        chunks_per_node: if quick_mode() { 400 } else { 2_000 },
        ..SweepConfig::default()
    };
    let pts = tradeoff_sweep(DatasetKind::Accelerometer, rings, lats, &sweep);
    if maybe_json(&pts) {
        return;
    }
    header("Fig. 6(b) — aggregate throughput (MB/s) vs ring count × inter-cloud latency (ds1)");
    print!("{:>14}", "rings \\ lat");
    for &l in lats {
        print!("{:>11.0}ms", l);
    }
    println!();
    for &r in rings {
        print!("{r:>14}");
        for &l in lats {
            let p = pts
                .iter()
                .find(|p| p.rings == r && p.inter_edge_ms == l)
                .expect("sweep point exists");
            print!(" {}", fmt(p.throughput_mbps));
        }
        println!();
    }
    println!("\npaper: larger rings win at <=15ms inter-cloud latency, lose above");
}
