//! Fig. 5(a): dedup throughput vs number of edge nodes for SMART (5
//! D2-rings), Cloud-Assisted and Cloud-Only, on both IoT datasets.
//!
//! Paper result: SMART outperforms Cloud-Assisted/Cloud-Only by
//! 38.3 % / 59.8 % on dataset 1 and 67.4 % / 118.5 % on dataset 2 (on
//! average), and SMART's throughput grows with the node count.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{throughput_vs_nodes, DatasetKind, SweepConfig};

fn main() {
    let counts: &[usize] = if quick_mode() {
        &[8, 12]
    } else {
        &[4, 8, 12, 16, 20]
    };
    let sweep = SweepConfig {
        chunks_per_node: if quick_mode() { 400 } else { 2_000 },
        ..SweepConfig::default()
    };
    let mut all = Vec::new();
    for kind in [DatasetKind::Accelerometer, DatasetKind::TrafficVideo] {
        let pts = throughput_vs_nodes(kind, counts, &sweep);
        if !ef_bench::json_mode() {
            header(&format!(
                "Fig. 5(a) — aggregate dedup throughput (MB/s), dataset: {}",
                kind.label()
            ));
            println!(
                "{:>6} {:>12} {:>16} {:>12} {:>14} {:>14}",
                "nodes", "SMART", "Cloud-Assisted", "Cloud-Only", "vs CA", "vs CO"
            );
            for &n in counts {
                let get = |s: &str| {
                    pts.iter()
                        .find(|p| p.x == n as f64 && p.strategy == s)
                        .map(|p| p.throughput_mbps)
                        .unwrap_or(f64::NAN)
                };
                let (sm, ca, co) = (get("SMART"), get("Cloud-Assisted"), get("Cloud-Only"));
                println!(
                    "{n:>6} {} {} {} {:>+13.1}% {:>+13.1}%",
                    fmt(sm),
                    fmt(ca),
                    fmt(co),
                    (sm / ca - 1.0) * 100.0,
                    (sm / co - 1.0) * 100.0
                );
            }
        }
        all.extend(pts);
    }
    maybe_json(&all);
    if !ef_bench::json_mode() {
        println!("\npaper: SMART +38.3%/+59.8% (ds1), +67.4%/+118.5% (ds2) vs CA/CO");
    }
}
