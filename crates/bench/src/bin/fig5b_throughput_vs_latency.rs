//! Fig. 5(b): dedup throughput vs edge↔cloud latency (20 nodes, ds1).
//!
//! Paper result: all strategies degrade with latency, but SMART's lead
//! over Cloud-Assisted grows (24.2 % at 30 ms → 67.1 % at 100 ms)
//! because its hash lookups stay between edge nodes.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{throughput_vs_wan_latency, DatasetKind, SweepConfig};

fn main() {
    let lats: &[f64] = if quick_mode() {
        &[12.2, 50.0]
    } else {
        &[12.2, 30.0, 50.0, 70.0, 100.0]
    };
    let nodes = 20;
    let sweep = SweepConfig {
        chunks_per_node: if quick_mode() { 400 } else { 2_000 },
        ..SweepConfig::default()
    };
    let mut all = Vec::new();
    for kind in [DatasetKind::Accelerometer, DatasetKind::TrafficVideo] {
        let pts = throughput_vs_wan_latency(kind, lats, nodes, &sweep);
        if !ef_bench::json_mode() {
            header(&format!(
                "Fig. 5(b) — throughput vs WAN latency (MB/s), dataset: {}",
                kind.label()
            ));
            println!(
                "{:>10} {:>12} {:>16} {:>12} {:>12}",
                "lat (ms)", "SMART", "Cloud-Assisted", "Cloud-Only", "SMART vs CA"
            );
            for &l in lats {
                let get = |s: &str| {
                    pts.iter()
                        .find(|p| p.x == l && p.strategy == s)
                        .map(|p| p.throughput_mbps)
                        .unwrap_or(f64::NAN)
                };
                let (sm, ca, co) = (get("SMART"), get("Cloud-Assisted"), get("Cloud-Only"));
                println!(
                    "{l:>10.1} {} {} {} {:>+11.1}%",
                    fmt(sm),
                    fmt(ca),
                    fmt(co),
                    (sm / ca - 1.0) * 100.0
                );
            }
        }
        all.extend(pts);
    }
    maybe_json(&all);
    if !ef_bench::json_mode() {
        println!("\npaper: SMART's lead over Cloud-Assisted grows with latency (24.2% -> 67.1%)");
    }
}
