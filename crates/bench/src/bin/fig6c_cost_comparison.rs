//! Fig. 6(c): total (Eq. 3) cost of SMART vs the Network-Only and
//! Dedup-Only ablations (20 nodes, 10 edge clouds, α = 0.1).
//!
//! Paper result: Network-Only and Dedup-Only incur 1.26× and 1.31× the
//! aggregate cost of SMART.

use ef_bench::{fmt, header, maybe_json};
use efdedup::experiments::{cost_comparison, DatasetKind};

fn main() {
    // Optional positional argument: the trade-off factor alpha. The
    // paper uses 0.1 with bandwidth-unit costs; our costs are RTT
    // milliseconds, so the equivalent balanced trade-off sits near 0.02
    // (see EXPERIMENTS.md).
    let alpha: f64 = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.02);
    let rows = cost_comparison(DatasetKind::Accelerometer, alpha, 5, 42);
    if maybe_json(&rows) {
        return;
    }
    header(&format!(
        "Fig. 6(c) — aggregate cost comparison (ds1, alpha = {alpha})"
    ));
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>10}",
        "algorithm", "storage", "network", "aggregate", "vs SMART"
    );
    let smart = rows
        .iter()
        .find(|r| r.algorithm == "SMART")
        .expect("SMART row")
        .aggregate;
    for r in &rows {
        println!(
            "{:<14} {} {} {} {:>9.2}x",
            r.algorithm,
            fmt(r.storage),
            fmt(r.network),
            fmt(r.aggregate),
            r.aggregate / smart
        );
    }
    println!("\npaper: Network-Only 1.26x, Dedup-Only 1.31x the cost of SMART");
}
