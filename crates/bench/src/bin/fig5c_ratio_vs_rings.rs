//! Fig. 5(c): dedup ratio vs number of D2-rings (20 nodes).
//!
//! Paper result: EF-dedup's dedup ratio is upper-bounded by the
//! cloud-based (global) ratio, and approaches it quickly as rings get
//! fewer/larger.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{ratio_vs_rings, DatasetKind, SweepConfig};

fn main() {
    let rings: &[usize] = if quick_mode() {
        &[1, 5, 10]
    } else {
        &[1, 2, 4, 5, 10, 20]
    };
    let sweep = SweepConfig {
        chunks_per_node: if quick_mode() { 400 } else { 2_000 },
        ..SweepConfig::default()
    };
    let mut all = Vec::new();
    for kind in [DatasetKind::Accelerometer, DatasetKind::TrafficVideo] {
        let pts = ratio_vs_rings(kind, rings, 20, &sweep);
        if !ef_bench::json_mode() {
            header(&format!(
                "Fig. 5(c) — dedup ratio vs number of D2-rings, dataset: {}",
                kind.label()
            ));
            println!("{:>8} {:>12}", "rings", "ratio");
            for p in &pts {
                if p.strategy == "SMART" {
                    println!("{:>8} {}", p.x as usize, fmt(p.dedup_ratio));
                }
            }
            let cloud = pts
                .iter()
                .find(|p| p.strategy == "Cloud (global)")
                .expect("cloud bound present");
            println!(
                "{:>8} {}   <- cloud-based upper bound",
                "global",
                fmt(cloud.dedup_ratio)
            );
        }
        all.extend(pts);
    }
    maybe_json(&all);
    if !ef_bench::json_mode() {
        println!("\npaper: fewer rings -> ratio approaches the cloud bound");
    }
}
