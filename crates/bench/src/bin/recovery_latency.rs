//! Recovery latency vs anti-entropy interval (EXPERIMENTS.md §recovery).
//!
//! A 6-node edge ring runs a check-and-insert workload while a seeded
//! chaos schedule crash-stops one node (restart from WAL) and departs
//! another permanently. Recovery latency is the span from the restart
//! event to the first anti-entropy round that finds every replica pair
//! of the restarted node clean — i.e. the node is provably caught up,
//! not merely rebooted. Sweeping the anti-entropy interval shows the
//! expected trade: tighter intervals buy faster convergence at the cost
//! of more tree exchanges on the wire.

use bytes::Bytes;
use ef_bench::{fmt, header, maybe_json, quick_mode};
use ef_chunking::ChunkHash;
use ef_kvstore::{
    ChaosEvent, ChaosScenario, ChaosScenarioConfig, ClientOp, ClusterConfig, SimCluster,
};
use ef_netsim::{Network, NetworkConfig, NodeId, TopologyBuilder};
use ef_simcore::{SimDuration, SimTime};
use serde::Serialize;

const MERKLE_DEPTH: u32 = 6;

/// One measured point: a seed × anti-entropy-interval cell.
#[derive(Debug, Serialize)]
struct Point {
    interval_ms: u64,
    seed: u64,
    recovery_ms: f64,
    antientropy_rounds: u64,
    entries_repaired: u64,
    wal_records_replayed: u64,
}

fn absent_at(scenario: &ChaosScenario, node: NodeId, t: SimTime) -> bool {
    let mut stopped_at = None;
    for ev in scenario.events() {
        match *ev {
            ChaosEvent::CrashStop { at, node: n } if n == node => stopped_at = Some(at),
            ChaosEvent::Restart { at, node: n } if n == node => {
                if let Some(start) = stopped_at {
                    if t >= start && t <= at {
                        return true;
                    }
                }
            }
            ChaosEvent::Depart { at, node: n } if n == node && t >= at => return true,
            _ => {}
        }
    }
    false
}

/// Runs one crash/restart/departure scenario and returns the measured
/// recovery latency plus the pipeline counters.
fn run_one(seed: u64, interval: SimDuration) -> Option<Point> {
    let topo = TopologyBuilder::new()
        .edge_site(2)
        .edge_site(2)
        .edge_site(2)
        .build();
    let mut net = Network::new(topo, NetworkConfig::paper_testbed());
    let chaos = ChaosScenarioConfig {
        crash_stops: 1,
        departures: 1,
        ..ChaosScenarioConfig::default()
    };
    let scenario = ChaosScenario::generate(seed, net.topology(), &chaos);
    scenario.rig(&mut net);
    let members = net.topology().edge_nodes();
    let mut cluster = SimCluster::new(members.clone(), net, ClusterConfig::default());
    cluster.enable_heartbeats_with_dead(
        SimDuration::from_millis(100),
        SimDuration::from_millis(350),
        SimDuration::from_millis(1200),
    );
    cluster.enable_anti_entropy(interval, MERKLE_DEPTH);
    scenario.apply(&mut cluster);
    let departed = scenario.events().iter().find_map(|ev| match *ev {
        ChaosEvent::Depart { node, .. } => Some(node),
        _ => None,
    })?;

    let mut t = SimTime::ZERO + SimDuration::from_millis(13);
    let mut turn = 0usize;
    for rep in 0..3u32 {
        for k in 0..12u32 {
            let coordinator = (0..members.len())
                .map(|i| members[(turn + rep as usize + i) % members.len()])
                .find(|&c| !absent_at(&scenario, c, t))?;
            turn += 1;
            let payload = Bytes::from(vec![(k % 251) as u8 ^ 0x5a; 96 + (k as usize % 17)]);
            let key = Bytes::copy_from_slice(ChunkHash::of(&payload).as_bytes());
            cluster.submit(t, coordinator, ClientOp::CheckAndInsert(key.clone(), key));
            t += SimDuration::from_millis(211);
        }
    }
    cluster.run();
    let cap = cluster.now() + SimDuration::from_secs_f64(120.0);
    while !(cluster.recovery_stats().restarts == 1
        && !cluster.ring().contains(departed)
        && cluster.replica_divergence(MERKLE_DEPTH) == 0
        && cluster.recovery_latencies().len() == 1)
    {
        if cluster.now() >= cap {
            return None;
        }
        cluster.run_until(cluster.now() + SimDuration::from_millis(500));
    }
    let (_, latency) = cluster.recovery_latencies().pop()?;
    let stats = cluster.recovery_stats();
    Some(Point {
        interval_ms: (interval.as_nanos() / 1_000_000),
        seed,
        recovery_ms: latency.as_nanos() as f64 / 1e6,
        antientropy_rounds: stats.antientropy_rounds,
        entries_repaired: stats.entries_repaired,
        wal_records_replayed: stats.wal_records_replayed,
    })
}

fn main() {
    let seeds: u64 = if quick_mode() { 3 } else { 10 };
    let intervals = [300u64, 700, 1500];
    let mut all: Vec<Point> = Vec::new();
    for &ms in &intervals {
        for seed in 0..seeds {
            if let Some(p) = run_one(seed, SimDuration::from_millis(ms)) {
                all.push(p);
            }
        }
    }
    if !ef_bench::json_mode() {
        header("Recovery latency vs anti-entropy interval (crash-stop + departure)");
        println!(
            "{:>14} {:>12} {:>12} {:>12} {:>14} {:>10} {:>6}",
            "interval (ms)",
            "median (ms)",
            "max (ms)",
            "rounds/run",
            "repaired/run",
            "wal/run",
            "runs"
        );
        for &ms in &intervals {
            let mut lat: Vec<f64> = all
                .iter()
                .filter(|p| p.interval_ms == ms)
                .map(|p| p.recovery_ms)
                .collect();
            if lat.is_empty() {
                continue;
            }
            lat.sort_by(|a, b| a.total_cmp(b));
            let median = lat[lat.len() / 2];
            let max = lat[lat.len() - 1];
            let n = lat.len();
            let rounds: u64 = all
                .iter()
                .filter(|p| p.interval_ms == ms)
                .map(|p| p.antientropy_rounds)
                .sum();
            let repaired: u64 = all
                .iter()
                .filter(|p| p.interval_ms == ms)
                .map(|p| p.entries_repaired)
                .sum();
            let wal: u64 = all
                .iter()
                .filter(|p| p.interval_ms == ms)
                .map(|p| p.wal_records_replayed)
                .sum();
            let max_seed = all
                .iter()
                .filter(|p| p.interval_ms == ms)
                .max_by(|a, b| a.recovery_ms.total_cmp(&b.recovery_ms))
                .map(|p| p.seed)
                .unwrap_or(0);
            println!(
                "{ms:>14} {} {} {:>12.1} {:>14.1} {:>10.1} {n:>6}  (slowest: seed {max_seed})",
                fmt(median),
                fmt(max),
                rounds as f64 / n as f64,
                repaired as f64 / n as f64,
                wal as f64 / n as f64,
            );
        }
        println!("\nrecovery = restart event -> first clean anti-entropy round for the node");
    }
    maybe_json(&all);
}
