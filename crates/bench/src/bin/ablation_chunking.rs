//! Ablation: fixed-size vs content-defined chunking (the paper's
//! future-work "variable-size chunking" extension).
//!
//! Fixed-size chunking matches the paper's model and prototype;
//! content-defined chunking resists boundary shift at the cost of CPU.
//! This binary measures both on both datasets: dedup ratio, chunk count,
//! and chunking throughput.

use ef_bench::{fmt, header, quick_mode};
use ef_chunking::{joint_dedup_ratio, Chunker, FixedChunker, GearChunkerBuilder};
use ef_datagen::datasets;

fn main() {
    let files_per_source = if quick_mode() { 1 } else { 2 };
    let chunks_per_file = if quick_mode() { 150 } else { 400 };

    for (name, dataset) in [
        ("accelerometer", datasets::accelerometer(4, 42)),
        ("traffic-video", datasets::traffic_video(4, 42)),
    ] {
        header(&format!("Ablation: chunking strategy, dataset {name}"));
        let mut streams = Vec::new();
        for s in 0..4usize {
            for f in 0..files_per_source {
                streams.push(dataset.file(s, 0, f as u32, chunks_per_file));
            }
        }
        let views: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        let total_bytes: usize = streams.iter().map(Vec::len).sum();

        let fixed = FixedChunker::new(dataset.model().chunk_size()).expect("valid");
        let cdc = GearChunkerBuilder::new()
            .min_size(1024)
            .target_size(4096)
            .max_size(16 * 1024)
            .build()
            .expect("valid");

        println!(
            "{:<12} {:>12} {:>12} {:>14}",
            "chunker", "dedup", "chunks", "MB/s (chunk)"
        );
        run_one("fixed-4k", &fixed, &views, total_bytes);
        run_one("gear-cdc", &cdc, &views, total_bytes);
    }
    println!(
        "\nNote: the synthetic generators emit chunk-aligned content, so fixed-size\n\
         chunking sees the full redundancy; CDC's edge is boundary-shift resistance\n\
         on *unaligned* edits (see the cdc unit tests), paid for in chunking CPU."
    );
}

fn run_one<C: Chunker>(label: &str, chunker: &C, views: &[&[u8]], total_bytes: usize) {
    let start = std::time::Instant::now();
    let ratio = joint_dedup_ratio(chunker, views);
    let elapsed = start.elapsed().as_secs_f64();
    let chunks: usize = views.iter().map(|v| chunker.chunk(v).len()).sum();
    println!(
        "{:<12} {} {:>12} {}",
        label,
        fmt(ratio),
        chunks,
        fmt(total_bytes as f64 / elapsed / 1e6)
    );
}
