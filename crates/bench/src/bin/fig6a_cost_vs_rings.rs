//! Fig. 6(a): measured storage cost and network cost vs the number of
//! D2-rings (20 nodes grouped into 10 edge clouds, inter-cloud 5 ms,
//! α = 0.1).
//!
//! Paper result: storage cost increases with more rings (less dedup);
//! network cost increases with larger rings (more cross-cloud lookups).

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{tradeoff_sweep, DatasetKind, SweepConfig};

fn main() {
    let rings: &[usize] = if quick_mode() {
        &[2, 10]
    } else {
        &[1, 2, 4, 5, 10, 20]
    };
    let sweep = SweepConfig {
        chunks_per_node: if quick_mode() { 400 } else { 2_000 },
        ..SweepConfig::default()
    };
    let pts = tradeoff_sweep(DatasetKind::Accelerometer, rings, &[5.0], &sweep);
    if maybe_json(&pts) {
        return;
    }
    header("Fig. 6(a) — storage & network cost vs number of rings (ds1, inter-cloud 5ms)");
    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "rings", "storage (MB)", "network (ms)", "dedup ratio"
    );
    for p in &pts {
        println!(
            "{:>8} {} {} {}",
            p.rings,
            fmt(p.storage_bytes as f64 / 1e6),
            fmt(p.network_cost_ms),
            fmt(p.dedup_ratio)
        );
    }
    println!("\npaper: storage rises with more rings; network rises with larger rings");
}
