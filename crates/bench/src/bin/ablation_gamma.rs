//! Ablation: the chunk-hash replication factor γ.
//!
//! γ controls the local-lookup probability `γ/|P|` (Eq. 2) and the
//! ring's failure tolerance. The paper's testbed fixes γ = 2; this
//! ablation sweeps γ and reports measured local-lookup fraction, network
//! cost, and throughput on the 20-node testbed.

use ef_bench::{fmt, header, quick_mode};
use ef_netsim::NetworkConfig;
use efdedup::experiments::{instance_for, testbed, DatasetKind};
use efdedup::partition::{Partitioner, SmartGreedy};
use efdedup::system::{run_system, Strategy, SystemConfig, Workload};

fn main() {
    let nodes = 20;
    let chunks = if quick_mode() { 400 } else { 2_000 };
    let network = testbed(nodes, NetworkConfig::paper_testbed());
    let dataset = DatasetKind::Accelerometer.build(nodes, 42);
    let workload = Workload::from_dataset(&dataset, nodes, chunks, 0);

    header("Ablation: replication factor gamma (ds1, 20 nodes, 5 rings)");
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>12}",
        "gamma", "local-lookup", "network (ms)", "thr (MB/s)", "dedup"
    );
    for gamma in [1usize, 2, 3, 4] {
        let inst = instance_for(&dataset, &network, 0.02, gamma, 10.0);
        let partition = SmartGreedy.partition(&inst, 5);
        let cfg = SystemConfig {
            replication_factor: gamma,
            ..SystemConfig::paper_testbed()
        };
        let m = run_system(&network, &workload, &Strategy::Smart(partition), &cfg);
        let local: f64 =
            m.nodes.iter().map(|n| n.local_lookup_fraction).sum::<f64>() / m.nodes.len() as f64;
        println!(
            "{gamma:>6} {:>13.1}% {} {} {}",
            local * 100.0,
            fmt(m.network_cost_ms),
            fmt(m.aggregate_throughput_mbps),
            fmt(m.dedup_ratio)
        );
    }
    println!(
        "\nexpected: local fraction tracks gamma/|ring|, network cost falls with gamma\n\
         (more replicas -> more local lookups), at gamma x index storage per ring"
    );
}
