//! Ingest hot-path benchmark: the gear-CDC fast scanner vs the seed
//! byte-at-a-time loop, batched vs scalar fingerprinting, and end-to-end
//! ingest with the sharded fingerprint cache on and off.
//!
//! Prints a table and writes `BENCH_ingest.json` at the repo root in a
//! stable, flat schema (every key global and unique) that the
//! `bench_regression` integration test and the CI bench-smoke job parse
//! without a JSON library. Run with `--quick` for a smoke-sized corpus.

use ef_bench::{fmt, header, quick_mode};
use ef_chunking::{fingerprint_batch, Chunker, FixedChunker, GearChunkerBuilder, Sha256};
use ef_datagen::datasets;
use ef_kvstore::{CacheStats, ClusterConfig, Consistency, FingerprintCache, LocalCluster};
use ef_netsim::NodeId;
use std::collections::BTreeSet;
use std::time::Instant;

/// Schema tag checked by the regression test; bump on layout changes.
/// v2: the ingest section measures the ring-backed dedup-check leg over
/// pre-computed fingerprints (chunking excluded), and the cached side
/// runs the second-sight admission policy.
/// v3: adds the upload-spool drain micro-bench
/// (`spool_drain_ops_per_sec`, `spool_drain_mbps`) — the
/// disaster-tolerance hot loop added with the cloud-outage work.
/// v4: adds the proof-of-possession micro-bench
/// (`pop_challenge_ops_per_sec`, `pop_digest_mbps`) — the
/// Byzantine-tolerance hot loop: derive a salted random-offset
/// challenge and digest the claimed slice, the cost a replica pays per
/// possession proof.
/// v5: adds the shift-redundant versioned-backup section — dedup ratios
/// per chunker on a corpus with real insert/delete shift redundancy
/// (`dedup_ratio_gear_versioned` vs `dedup_ratio_fixed_versioned`, the
/// headline CDC-beats-fixed result), the arXiv 1701.04451 closed-form
/// expectation (`dedup_ratio_versioned_expected`,
/// `versioned_model_err_pct`), and restore-path metrics over the
/// container layout with defrag off and on
/// (`restore_fragmentation_mean`, `restore_locality`,
/// `restore_fragmentation_defrag`, `restore_locality_defrag`,
/// `restore_rewrite_overhead_pct`).
const SCHEMA: &str = "efdedup-bench-ingest/v5";

fn main() {
    let (files_per_source, chunks_per_file, reps) = if quick_mode() {
        (1usize, 150usize, 2usize)
    } else {
        (3, 600, 5)
    };

    // The same synthetic corpus the chunking ablation uses: several
    // sources per dataset with real cross-source redundancy.
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for dataset in [
        datasets::accelerometer(4, 42),
        datasets::traffic_video(4, 42),
    ] {
        for s in 0..4usize {
            for f in 0..files_per_source {
                streams.push(dataset.file(s, 0, f as u32, chunks_per_file));
            }
        }
    }
    let views: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
    let total_bytes: usize = streams.iter().map(Vec::len).sum();
    let mb = total_bytes as f64 / 1e6;

    let fixed = FixedChunker::new(4096).expect("valid");
    let gear = GearChunkerBuilder::new()
        .min_size(1024)
        .target_size(4096)
        .max_size(16 * 1024)
        .build()
        .expect("valid");

    header(&format!(
        "Ingest hot path ({:.1} MB corpus, best of {reps})",
        mb
    ));

    // --- Chunking throughput -------------------------------------------
    let fixed_secs = best_secs(reps, || {
        views.iter().map(|v| fixed.chunk(v).len()).sum::<usize>()
    });
    let seed_secs = best_secs(reps, || {
        views
            .iter()
            .map(|v| gear.chunk_reference(v).len())
            .sum::<usize>()
    });
    let fast_secs = best_secs(reps, || {
        views.iter().map(|v| gear.chunk(v).len()).sum::<usize>()
    });
    let fixed_mbps = mb / fixed_secs;
    let seed_mbps = mb / seed_secs;
    let fast_mbps = mb / fast_secs;
    let speedup = fast_mbps / seed_mbps;

    println!("{:<26} {:>12}", "chunk+fingerprint path", "MB/s");
    println!("{:<26} {}", "fixed-4k (batched)", fmt(fixed_mbps));
    println!("{:<26} {}", "gear-cdc seed (scalar)", fmt(seed_mbps));
    println!("{:<26} {}", "gear-cdc fast (batched)", fmt(fast_mbps));
    println!("{:<26} {}", "gear fast/seed speedup", fmt(speedup));

    // --- Fingerprinting throughput (isolated from chunking) ------------
    let payloads: Vec<&[u8]> = views
        .iter()
        .flat_map(|v| {
            gear.boundaries(v)
                .windows(2)
                .map(|w| &v[w[0]..w[1]])
                .collect::<Vec<_>>()
        })
        .collect();
    let scalar_secs = best_secs(reps, || {
        payloads.iter().map(|p| Sha256::digest(p)[0]).sum::<u8>()
    });
    let batch_secs = best_secs(reps, || fingerprint_batch(&payloads).len());
    let scalar_mbps = mb / scalar_secs;
    let batch_mbps = mb / batch_secs;

    println!("\n{:<26} {:>12}", "fingerprinting", "MB/s");
    println!("{:<26} {}", "sha-256 scalar", fmt(scalar_mbps));
    println!("{:<26} {}", "sha-256 batched", fmt(batch_mbps));
    println!(
        "{:<26} {}",
        "batch/scalar speedup",
        fmt(batch_mbps / scalar_mbps)
    );

    // --- Dedup-check ingest: the agent's ring-index leg ----------------
    // Chunking is measured above; here pre-computed fingerprints are
    // streamed through the ring key-value store exactly as the system
    // runner does — with and without the fingerprint cache in front. The
    // cached side uses second-sight admission, so one-hit-wonder chunks
    // never churn the LRU and the common miss costs one bit probe.
    //
    // An untimed population pass first ingests the corpus (the write
    // path is measured by the kvstore benches, not here); the timed
    // section then replays the corpus for `EPOCHS` rounds — the periodic
    // re-upload traffic edge dedup exists for, where every fingerprint
    // is a duplicate the index must confirm. Under second sight the
    // first replay earns each fingerprint admission and later replays
    // hit locally.
    const EPOCHS: usize = 3;
    let epoch_keys: Vec<[u8; 32]> = views
        .iter()
        .flat_map(|v| {
            gear.chunk(v)
                .into_iter()
                .map(|c| *c.hash.as_bytes())
                .collect::<Vec<_>>()
        })
        .collect();
    let total_chunks = epoch_keys.len() * EPOCHS;
    let off_secs = best_of(reps, || ingest(&epoch_keys, EPOCHS, false).0);
    let on_secs = best_of(reps, || ingest(&epoch_keys, EPOCHS, true).0);
    let off_ops = total_chunks as f64 / off_secs;
    let on_ops = total_chunks as f64 / on_secs;

    // Hit rate from one counted pass (timing passes discard the cache).
    let (_, counted) = ingest(&epoch_keys, EPOCHS, true);
    let hit_rate = counted.hit_rate();

    println!("\n{:<26} {:>12}", "re-ingest dedup-check", "ops/s");
    println!("{:<26} {}", "cache off", fmt(off_ops));
    println!("{:<26} {}", "cache on (8x16k, 2nd-sight)", fmt(on_ops));
    println!("{:<26} {}", "cache hit rate", fmt(hit_rate));

    // --- Upload-spool drain: the disaster-tolerance hot loop -----------
    // During a cloud outage the durable upload spool absorbs every
    // unique chunk; when the uplink returns it drains under a bandwidth
    // cap. One full cycle per chunk — WAL-backed enqueue, capped batch
    // planning, acked retirement — is the bookkeeping cost a node pays
    // on top of the upload itself, so it must stay far above uplink
    // line rate.
    let spool_entries = if quick_mode() { 2_000usize } else { 8_000 };
    let spool_value = vec![0x5au8; 4096];
    let spool_secs = best_secs(reps, || {
        use ef_kvstore::{SpoolClass, SpoolDest, UploadSpool};
        let mut spool = UploadSpool::new(64);
        for i in 0..spool_entries {
            spool.enqueue(
                SpoolClass::Critical,
                SpoolDest::Cloud,
                bytes::Bytes::copy_from_slice(&(i as u64).to_be_bytes()),
                Some(bytes::Bytes::from(spool_value.clone())),
            );
        }
        let mut drained = 0usize;
        while !spool.is_empty() {
            let batch = spool.plan_cloud_batch(256 * 1024);
            for (key, _) in &batch {
                spool.retire_cloud(key);
            }
            drained += batch.len();
        }
        drained
    });
    let spool_ops = spool_entries as f64 / spool_secs;
    let spool_mbps = (spool_entries * spool_value.len()) as f64 / 1e6 / spool_secs;

    println!("\n{:<26} {:>12}", "upload-spool drain", "");
    println!("{:<26} {} ops/s", "enqueue+plan+retire", fmt(spool_ops));
    println!("{:<26} {} MB/s", "payload throughput", fmt(spool_mbps));

    // --- Proof-of-possession: the Byzantine-tolerance hot loop ---------
    // Per challenge a replica derives the salted slice coordinates and
    // digests up to 512 bytes of the claimed chunk; the coordinator
    // pays the same digest to verify. Both sides together bound the
    // per-duplicate CPU overhead of arming the defense, so the rate
    // must dwarf any realistic duplicate arrival rate.
    let pop_stats = {
        use ef_kvstore::{derive_challenge, key_token, nth_op_id, pop_digest};
        let prover = NodeId(1);
        // The coordinator challenges by fingerprint, not payload: token
        // the 32-byte chunk hash (computed by ingest long before any
        // challenge), untimed.
        let tokens: Vec<u64> = payloads
            .iter()
            .map(|p| key_token(&Sha256::digest(p)))
            .collect();
        let secs = best_secs(reps, || {
            let mut acc = 0u32;
            for (i, p) in payloads.iter().enumerate() {
                let challenge =
                    derive_challenge(0x5eed, nth_op_id(NodeId(0), i as u64), tokens[i], prover);
                acc = acc.wrapping_add(u32::from(pop_digest(challenge, p)[0]));
            }
            acc
        });
        let ops = payloads.len() as f64 / secs;
        let sliced: usize = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let c = derive_challenge(0x5eed, nth_op_id(NodeId(0), i as u64), tokens[i], prover);
                (c.len as usize).min(p.len())
            })
            .sum();
        (ops, sliced as f64 / 1e6 / secs)
    };
    let (pop_ops, pop_mbps) = pop_stats;

    println!("\n{:<26} {:>12}", "proof-of-possession", "");
    println!("{:<26} {} ops/s", "derive+digest challenge", fmt(pop_ops));
    println!("{:<26} {} MB/s", "sliced digest throughput", fmt(pop_mbps));

    // --- Dedup ratios: the fast path must not change the answer --------
    let ratio_fixed = ef_chunking::joint_dedup_ratio(&fixed, &views);
    let ratio_fast = ef_chunking::joint_dedup_ratio(&gear, &views);
    let ratio_seed = seed_ratio(&gear, &views);
    let delta_pct = (ratio_fast - ratio_seed).abs() / ratio_seed * 100.0;

    println!("\n{:<26} {:>12}", "dedup ratio", "x");
    println!("{:<26} {}", "fixed-4k", fmt(ratio_fixed));
    println!("{:<26} {}", "gear-cdc seed", fmt(ratio_seed));
    println!("{:<26} {}", "gear-cdc fast", fmt(ratio_fast));
    println!("{:<26} {}", "fast vs seed delta %", fmt(delta_pct));

    // --- Shift-redundant realism: the versioned-backup corpus ----------
    // The pool corpus above duplicates at byte alignment, so fixed-size
    // chunking wins there by construction. Real backup streams carry
    // *shifted* redundancy — small inserts/deletes between versions —
    // which is the workload CDC exists for. Measure both chunkers on a
    // versioned-backup corpus and check the gear ratio against the
    // arXiv 1701.04451 closed form (DESIGN.md §18).
    let vb_cfg = if quick_mode() {
        ef_datagen::VersionedBackupConfig {
            base_len: 128 * 1024,
            versions: 6,
            ..ef_datagen::VersionedBackupConfig::default()
        }
    } else {
        ef_datagen::VersionedBackupConfig::default()
    };
    let versioned = ef_datagen::WorkloadKind::VersionedBackup(vb_cfg).streams(42);
    let vviews: Vec<&[u8]> = versioned.iter().map(|s| s.as_slice()).collect();
    let v_total: usize = vviews.iter().map(|v| v.len()).sum();
    let v_chunk_lists: Vec<Vec<ef_chunking::Chunk>> =
        vviews.iter().map(|v| gear.chunk(v)).collect();
    let v_chunks: usize = v_chunk_lists.iter().map(Vec::len).sum();
    let v_mean_chunk = v_total as f64 / v_chunks as f64;
    let v_fixed = ef_chunking::joint_dedup_ratio(&fixed, &vviews);
    let v_fast = ef_chunking::joint_dedup_ratio(&gear, &vviews);
    let v_seed = seed_ratio(&gear, &vviews);
    let v_expected = vb_cfg.expected_ratio_cdc(v_mean_chunk);
    let v_model_err_pct = (v_fast - v_expected).abs() / v_expected * 100.0;

    println!("\n{:<26} {:>12}", "versioned-backup dedup", "x");
    println!("{:<26} {}", "fixed-4k", fmt(v_fixed));
    println!("{:<26} {}", "gear-cdc seed", fmt(v_seed));
    println!("{:<26} {}", "gear-cdc fast", fmt(v_fast));
    println!("{:<26} {}", "closed-form expected", fmt(v_expected));
    println!("{:<26} {}", "model error %", fmt(v_model_err_pct));

    // --- Restore path over the container layout ------------------------
    // Ingest the versions in arrival order into fixed-capacity
    // containers, then restore each version and measure fragmentation
    // (distinct containers per restore) and locality (fraction of
    // consecutive reads staying in a container) — defrag off, then with
    // the capped-rewrite policy.
    let container_bytes = 64 * 1024;
    let (plain, plain_latest) = restore_run(
        &v_chunk_lists,
        container_bytes,
        ef_cloudstore::DefragPolicy::Off,
    );
    let (defrag, defrag_latest) = restore_run(
        &v_chunk_lists,
        container_bytes,
        ef_cloudstore::DefragPolicy::CapRewrite { window: 1 },
    );
    let latest_locality = |p: &ef_cloudstore::RestoreProfile| {
        let adjacent = p.chunks_read.saturating_sub(1);
        if adjacent == 0 {
            1.0
        } else {
            1.0 - p.switches as f64 / adjacent as f64
        }
    };
    let loc_latest_plain = latest_locality(&plain_latest);
    let loc_latest_defrag = latest_locality(&defrag_latest);
    let unique_bytes: u64 = {
        let mut seen: BTreeSet<[u8; 32]> = BTreeSet::new();
        let mut total = 0u64;
        for chunks in &v_chunk_lists {
            for c in chunks {
                if seen.insert(*c.hash.as_bytes()) {
                    total += c.len() as u64;
                }
            }
        }
        total
    };
    let rewrite_overhead_pct = defrag.rewrite_bytes as f64 / unique_bytes as f64 * 100.0;

    println!("\n{:<26} {:>12}", "restore path (64k cont.)", "");
    println!(
        "{:<26} {}",
        "fragmentation (defrag off)",
        fmt(plain.fragmentation_mean)
    );
    println!("{:<26} {}", "locality (defrag off)", fmt(plain.locality));
    println!(
        "{:<26} {}",
        "fragmentation (window 1)",
        fmt(defrag.fragmentation_mean)
    );
    println!("{:<26} {}", "locality (window 1)", fmt(defrag.locality));
    let latest_frag = format!("{} / {}", plain_latest.containers, defrag_latest.containers);
    println!("{:<26} {latest_frag}", "latest frag off/defrag");
    println!("{:<26} {}", "latest locality off", fmt(loc_latest_plain));
    println!(
        "{:<26} {}",
        "latest locality defrag",
        fmt(loc_latest_defrag)
    );
    println!("{:<26} {} %", "rewrite overhead", fmt(rewrite_overhead_pct));

    // --- BENCH_ingest.json ---------------------------------------------
    // Hand-formatted so the schema is byte-stable and greppable; parsed
    // by tests/bench_regression.rs and the CI bench-smoke job.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"corpus_bytes\": {total_bytes},\n  \
         \"fixed_chunk_mbps\": {fixed_mbps:.2},\n  \
         \"gear_seed_chunk_mbps\": {seed_mbps:.2},\n  \
         \"gear_fast_chunk_mbps\": {fast_mbps:.2},\n  \
         \"gear_chunk_speedup\": {speedup:.3},\n  \
         \"fingerprint_scalar_mbps\": {scalar_mbps:.2},\n  \
         \"fingerprint_batch_mbps\": {batch_mbps:.2},\n  \
         \"ingest_epochs\": {EPOCHS},\n  \
         \"ingest_cache_off_ops_per_sec\": {off_ops:.1},\n  \
         \"ingest_cache_on_ops_per_sec\": {on_ops:.1},\n  \
         \"ingest_cache_hit_rate\": {hit_rate:.4},\n  \
         \"spool_drain_ops_per_sec\": {spool_ops:.1},\n  \
         \"spool_drain_mbps\": {spool_mbps:.2},\n  \
         \"pop_challenge_ops_per_sec\": {pop_ops:.1},\n  \
         \"pop_digest_mbps\": {pop_mbps:.2},\n  \
         \"dedup_ratio_fixed\": {ratio_fixed:.4},\n  \
         \"dedup_ratio_gear_seed\": {ratio_seed:.4},\n  \
         \"dedup_ratio_gear_fast\": {ratio_fast:.4},\n  \
         \"dedup_ratio_gear_delta_pct\": {delta_pct:.4},\n  \
         \"dedup_ratio_fixed_versioned\": {v_fixed:.4},\n  \
         \"dedup_ratio_gear_versioned\": {v_fast:.4},\n  \
         \"dedup_ratio_gear_versioned_seed\": {v_seed:.4},\n  \
         \"dedup_ratio_versioned_expected\": {v_expected:.4},\n  \
         \"versioned_model_err_pct\": {v_model_err_pct:.2},\n  \
         \"restore_fragmentation_mean\": {frag_plain:.4},\n  \
         \"restore_locality\": {loc_plain:.4},\n  \
         \"restore_fragmentation_defrag\": {frag_defrag:.4},\n  \
         \"restore_locality_defrag\": {loc_defrag:.4},\n  \
         \"restore_latest_fragmentation\": {frag_latest_plain},\n  \
         \"restore_latest_fragmentation_defrag\": {frag_latest_defrag},\n  \
         \"restore_latest_locality\": {loc_latest_plain:.4},\n  \
         \"restore_latest_locality_defrag\": {loc_latest_defrag:.4},\n  \
         \"restore_rewrite_overhead_pct\": {rewrite_overhead_pct:.2}\n}}\n",
        frag_plain = plain.fragmentation_mean,
        loc_plain = plain.locality,
        frag_defrag = defrag.fragmentation_mean,
        loc_defrag = defrag.locality,
        frag_latest_plain = plain_latest.containers,
        frag_latest_defrag = defrag_latest.containers,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, json).expect("write BENCH_ingest.json");
    println!("\nwrote {path}");
}

/// Best-of-`reps` wall time of `f` after one warm-up call.
fn best_secs<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One ingest experiment: an untimed population pass pushes the corpus
/// fingerprints through the ring key-value store, then `epochs` timed
/// replay rounds drive the dedup-check leg — per fingerprint consult
/// the cache (when enabled) and fall back to the ring, exactly as the
/// system runner does. Returns the timed-section seconds and the cache
/// counters of the whole run.
fn ingest(epoch_keys: &[[u8; 32]], epochs: usize, cached: bool) -> (f64, CacheStats) {
    let members: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut cluster = LocalCluster::new(
        members.clone(),
        ClusterConfig {
            replication_factor: 2,
            consistency: Consistency::One,
            ..ClusterConfig::default()
        },
    );
    let mut cache = cached.then(|| FingerprintCache::new(8, 1 << 14).with_second_sight());
    let mut round = |keys: &[[u8; 32]], cluster: &mut LocalCluster| {
        let mut checked = 0usize;
        for key in keys {
            if let Some(cache) = cache.as_mut() {
                if cache.contains(key) {
                    continue; // duplicate confirmed locally, no ring trip
                }
            }
            checked += 1;
            cluster
                .check_and_insert(members[0], key, bytes::Bytes::from_static(&[1]))
                .expect("instant-delivery cluster cannot fail");
            if let Some(cache) = cache.as_mut() {
                cache.insert(bytes::Bytes::copy_from_slice(key));
            }
        }
        checked
    };
    round(epoch_keys, &mut cluster); // population (untimed)
    let start = Instant::now();
    let mut checked = 0usize;
    for _ in 0..epochs {
        checked += round(epoch_keys, &mut cluster);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(checked);
    (secs, cache.map(|c| c.stats()).unwrap_or_default())
}

/// Best (minimum) of `reps` values returned by `f`, after one warm-up.
fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(f());
    }
    best
}

/// Ingests chunked version streams in arrival order into a container
/// layout under `policy`, then restores every version and aggregates
/// the restore-path stats (single cloud endpoint, so one serving node).
/// Also returns the profile of the *latest* version's restore — the
/// SLA-relevant one in backup systems, and the restore capped rewriting
/// exists to keep sequential.
fn restore_run(
    chunk_lists: &[Vec<ef_chunking::Chunk>],
    container_bytes: usize,
    policy: ef_cloudstore::DefragPolicy,
) -> (ef_cloudstore::RestoreStats, ef_cloudstore::RestoreProfile) {
    let mut layout = ef_cloudstore::ContainerLayout::new(container_bytes);
    let mut seen: BTreeSet<[u8; 32]> = BTreeSet::new();
    for chunks in chunk_lists {
        for c in chunks {
            if seen.insert(*c.hash.as_bytes()) {
                layout.place(c.hash, c.len());
            } else {
                layout.on_duplicate(&c.hash, c.len(), policy);
            }
        }
    }
    let mut acc = ef_cloudstore::RestoreAccountant::new();
    let mut latest = ef_cloudstore::RestoreProfile::default();
    for chunks in chunk_lists {
        let hashes: Vec<ef_chunking::ChunkHash> = chunks.iter().map(|c| c.hash).collect();
        let profile = ef_cloudstore::restore_profile(&layout, &hashes);
        acc.record(&profile, 1);
        latest = profile;
    }
    acc.absorb_layout(&layout);
    (acc.finish(), latest)
}

/// Joint dedup ratio through the *seed* (reference) gear pipeline.
fn seed_ratio(gear: &ef_chunking::GearChunker, views: &[&[u8]]) -> f64 {
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut seen: BTreeSet<[u8; 32]> = BTreeSet::new();
    let mut unique_bytes = 0usize;
    for v in views {
        for chunk in gear.chunk_reference(v) {
            if seen.insert(*chunk.hash.as_bytes()) {
                unique_bytes += chunk.len();
            }
        }
    }
    total as f64 / unique_bytes as f64
}
