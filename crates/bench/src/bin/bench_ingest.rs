//! Ingest hot-path benchmark: the gear-CDC fast scanner vs the seed
//! byte-at-a-time loop, batched vs scalar fingerprinting, and end-to-end
//! ingest with the sharded fingerprint cache on and off.
//!
//! Prints a table and writes `BENCH_ingest.json` at the repo root in a
//! stable, flat schema (every key global and unique) that the
//! `bench_regression` integration test and the CI bench-smoke job parse
//! without a JSON library. Run with `--quick` for a smoke-sized corpus.

use ef_bench::{fmt, header, quick_mode};
use ef_chunking::{fingerprint_batch, Chunker, FixedChunker, GearChunkerBuilder, Sha256};
use ef_datagen::datasets;
use ef_kvstore::FingerprintCache;
use std::collections::BTreeSet;
use std::time::Instant;

/// Schema tag checked by the regression test; bump on layout changes.
const SCHEMA: &str = "efdedup-bench-ingest/v1";

fn main() {
    let (files_per_source, chunks_per_file, reps) = if quick_mode() {
        (1usize, 150usize, 2usize)
    } else {
        (3, 600, 5)
    };

    // The same synthetic corpus the chunking ablation uses: several
    // sources per dataset with real cross-source redundancy.
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for dataset in [
        datasets::accelerometer(4, 42),
        datasets::traffic_video(4, 42),
    ] {
        for s in 0..4usize {
            for f in 0..files_per_source {
                streams.push(dataset.file(s, 0, f as u32, chunks_per_file));
            }
        }
    }
    let views: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
    let total_bytes: usize = streams.iter().map(Vec::len).sum();
    let mb = total_bytes as f64 / 1e6;

    let fixed = FixedChunker::new(4096).expect("valid");
    let gear = GearChunkerBuilder::new()
        .min_size(1024)
        .target_size(4096)
        .max_size(16 * 1024)
        .build()
        .expect("valid");

    header(&format!(
        "Ingest hot path ({:.1} MB corpus, best of {reps})",
        mb
    ));

    // --- Chunking throughput -------------------------------------------
    let fixed_secs = best_secs(reps, || {
        views.iter().map(|v| fixed.chunk(v).len()).sum::<usize>()
    });
    let seed_secs = best_secs(reps, || {
        views
            .iter()
            .map(|v| gear.chunk_reference(v).len())
            .sum::<usize>()
    });
    let fast_secs = best_secs(reps, || {
        views.iter().map(|v| gear.chunk(v).len()).sum::<usize>()
    });
    let fixed_mbps = mb / fixed_secs;
    let seed_mbps = mb / seed_secs;
    let fast_mbps = mb / fast_secs;
    let speedup = fast_mbps / seed_mbps;

    println!("{:<26} {:>12}", "chunk+fingerprint path", "MB/s");
    println!("{:<26} {}", "fixed-4k (batched)", fmt(fixed_mbps));
    println!("{:<26} {}", "gear-cdc seed (scalar)", fmt(seed_mbps));
    println!("{:<26} {}", "gear-cdc fast (batched)", fmt(fast_mbps));
    println!("{:<26} {}", "gear fast/seed speedup", fmt(speedup));

    // --- Fingerprinting throughput (isolated from chunking) ------------
    let payloads: Vec<&[u8]> = views
        .iter()
        .flat_map(|v| {
            gear.boundaries(v)
                .windows(2)
                .map(|w| &v[w[0]..w[1]])
                .collect::<Vec<_>>()
        })
        .collect();
    let scalar_secs = best_secs(reps, || {
        payloads.iter().map(|p| Sha256::digest(p)[0]).sum::<u8>()
    });
    let batch_secs = best_secs(reps, || fingerprint_batch(&payloads).len());
    let scalar_mbps = mb / scalar_secs;
    let batch_mbps = mb / batch_secs;

    println!("\n{:<26} {:>12}", "fingerprinting", "MB/s");
    println!("{:<26} {}", "sha-256 scalar", fmt(scalar_mbps));
    println!("{:<26} {}", "sha-256 batched", fmt(batch_mbps));
    println!(
        "{:<26} {}",
        "batch/scalar speedup",
        fmt(batch_mbps / scalar_mbps)
    );

    // --- End-to-end ingest: chunk, fingerprint, dedup-check ------------
    let total_chunks: usize = views.iter().map(|v| gear.chunk(v).len()).sum();
    let off_secs = best_secs(reps, || ingest(&gear, &views, None));
    let on_secs = best_secs(reps, || ingest(&gear, &views, Some((8, 1 << 14))));
    let off_ops = total_chunks as f64 / off_secs;
    let on_ops = total_chunks as f64 / on_secs;

    // Hit rate from one counted pass (timing passes discard the cache).
    let mut cache = FingerprintCache::new(8, 1 << 14);
    let mut index: BTreeSet<[u8; 32]> = BTreeSet::new();
    for v in &views {
        for chunk in gear.chunk(v) {
            let key = *chunk.hash.as_bytes();
            if !cache.contains(&key) {
                index.insert(key);
                cache.insert(bytes::Bytes::copy_from_slice(&key));
            }
        }
    }
    let hit_rate = cache.stats().hit_rate();

    println!("\n{:<26} {:>12}", "ingest (chunks/s)", "ops/s");
    println!("{:<26} {}", "cache off", fmt(off_ops));
    println!("{:<26} {}", "cache on (8x16k)", fmt(on_ops));
    println!("{:<26} {}", "cache hit rate", fmt(hit_rate));

    // --- Dedup ratios: the fast path must not change the answer --------
    let ratio_fixed = ef_chunking::joint_dedup_ratio(&fixed, &views);
    let ratio_fast = ef_chunking::joint_dedup_ratio(&gear, &views);
    let ratio_seed = seed_ratio(&gear, &views);
    let delta_pct = (ratio_fast - ratio_seed).abs() / ratio_seed * 100.0;

    println!("\n{:<26} {:>12}", "dedup ratio", "x");
    println!("{:<26} {}", "fixed-4k", fmt(ratio_fixed));
    println!("{:<26} {}", "gear-cdc seed", fmt(ratio_seed));
    println!("{:<26} {}", "gear-cdc fast", fmt(ratio_fast));
    println!("{:<26} {}", "fast vs seed delta %", fmt(delta_pct));

    // --- BENCH_ingest.json ---------------------------------------------
    // Hand-formatted so the schema is byte-stable and greppable; parsed
    // by tests/bench_regression.rs and the CI bench-smoke job.
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"corpus_bytes\": {total_bytes},\n  \
         \"fixed_chunk_mbps\": {fixed_mbps:.2},\n  \
         \"gear_seed_chunk_mbps\": {seed_mbps:.2},\n  \
         \"gear_fast_chunk_mbps\": {fast_mbps:.2},\n  \
         \"gear_chunk_speedup\": {speedup:.3},\n  \
         \"fingerprint_scalar_mbps\": {scalar_mbps:.2},\n  \
         \"fingerprint_batch_mbps\": {batch_mbps:.2},\n  \
         \"ingest_cache_off_ops_per_sec\": {off_ops:.1},\n  \
         \"ingest_cache_on_ops_per_sec\": {on_ops:.1},\n  \
         \"ingest_cache_hit_rate\": {hit_rate:.4},\n  \
         \"dedup_ratio_fixed\": {ratio_fixed:.4},\n  \
         \"dedup_ratio_gear_seed\": {ratio_seed:.4},\n  \
         \"dedup_ratio_gear_fast\": {ratio_fast:.4},\n  \
         \"dedup_ratio_gear_delta_pct\": {delta_pct:.4}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, json).expect("write BENCH_ingest.json");
    println!("\nwrote {path}");
}

/// Best-of-`reps` wall time of `f` after one warm-up call.
fn best_secs<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One ingest pass: chunk each stream, then per chunk consult the cache
/// (when enabled) and fall back to the index — the agent's local leg of
/// check-and-insert.
fn ingest(gear: &ef_chunking::GearChunker, views: &[&[u8]], cache: Option<(usize, usize)>) {
    let mut cache = cache.map(|(shards, per_shard)| FingerprintCache::new(shards, per_shard));
    let mut index: BTreeSet<[u8; 32]> = BTreeSet::new();
    for v in views {
        for chunk in gear.chunk(v) {
            let key = *chunk.hash.as_bytes();
            if let Some(cache) = cache.as_mut() {
                if cache.contains(&key) {
                    continue;
                }
                cache.insert(bytes::Bytes::copy_from_slice(&key));
            }
            index.insert(key);
        }
    }
    std::hint::black_box(index.len());
}

/// Joint dedup ratio through the *seed* (reference) gear pipeline.
fn seed_ratio(gear: &ef_chunking::GearChunker, views: &[&[u8]]) -> f64 {
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut seen: BTreeSet<[u8; 32]> = BTreeSet::new();
    let mut unique_bytes = 0usize;
    for v in views {
        for chunk in gear.chunk_reference(v) {
            if seen.insert(*chunk.hash.as_bytes()) {
                unique_bytes += chunk.len();
            }
        }
    }
    total as f64 / unique_bytes as f64
}
