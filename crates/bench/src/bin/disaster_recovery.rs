//! Disaster-recovery experiment: spool drain time vs uplink bandwidth
//! cap, and the mesh-vs-cloud repair split after a ring wipe.
//!
//! Backs the "Cloud outage & ring disaster" tables in EXPERIMENTS.md.
//! One deterministic scenario per bandwidth cap: a cloud outage from
//! t = 0 forces every unique chunk into the durable upload spools; the
//! uplink returns at 0.8 s and drains the backlog under the cap; at
//! 1.8 s a whole edge site is wiped and heals at 2.2 s, triggering
//! rarest-first mesh repair with cloud-catalog fallback. Reported per
//! cap: time to drain the spool backlog, time-to-recovery of the wiped
//! ring (heal to last repair delivery), and the repair source split.

use bytes::Bytes;
use ef_kvstore::{ClientOp, ClusterConfig, Consistency, DisasterStats, SimCluster};
use ef_netsim::{Network, NetworkConfig, SiteId, TopologyBuilder};
use ef_simcore::{SimDuration, SimTime};

const CHUNKS: u32 = 64;
const CHUNK_BYTES: usize = 1024;
const OUTAGE_END_S: f64 = 0.8;

fn run(byte_cap: u64) -> (f64, DisasterStats) {
    let topo = TopologyBuilder::new()
        .edge_site(2)
        .edge_site(2)
        .edge_site(2)
        .cloud_site(1)
        .build();
    let net = Network::new(topo, NetworkConfig::paper_testbed());
    let members = net.topology().edge_nodes();
    let cloud = net.topology().nodes_in(net.topology().cloud_sites()[0])[0];
    let mut cluster = SimCluster::new(
        members.clone(),
        net,
        ClusterConfig {
            replication_factor: 3,
            consistency: Consistency::Quorum,
            ..ClusterConfig::default()
        },
    );
    cluster.enable_heartbeats_with_dead(
        SimDuration::from_millis(20),
        SimDuration::from_millis(100),
        SimDuration::from_millis(500),
    );
    cluster.enable_cloud_uplink(cloud, byte_cap, SimDuration::from_millis(10));
    cluster.cloud_outage_at(SimTime::ZERO, SimTime::from_secs_f64(OUTAGE_END_S));
    cluster.ring_outage_at(
        SimTime::from_secs_f64(1.8),
        SimTime::from_secs_f64(2.2),
        SiteId(0),
    );
    let mut t = SimTime::ZERO + SimDuration::from_millis(10);
    for i in 0..CHUNKS {
        let key = Bytes::from(format!("dr-chunk-{i:03}").into_bytes());
        let value = Bytes::from(vec![(i % 251) as u8; CHUNK_BYTES]);
        cluster.submit(
            t,
            members[(i % 6) as usize],
            ClientOp::CheckAndInsert(key, value),
        );
        t += SimDuration::from_millis(5);
    }
    // Step past the outage in 10 ms increments to find the first
    // instant the spool backlog is fully drained to the cloud.
    let mut probe = SimTime::from_secs_f64(OUTAGE_END_S);
    let drained_at = loop {
        cluster.run_until(probe);
        if cluster.disaster_stats().spool_depth == 0 {
            break probe;
        }
        probe += SimDuration::from_millis(10);
        assert!(
            probe <= SimTime::from_secs_f64(1.8),
            "backlog not drained before the ring wipe at cap {byte_cap}"
        );
    };
    cluster.run_until(SimTime::from_secs_f64(6.0));
    let drain_secs = drained_at.saturating_since(SimTime::from_secs_f64(OUTAGE_END_S));
    (drain_secs.as_nanos() as f64 / 1e6, cluster.disaster_stats())
}

fn main() {
    println!(
        "{:>12} {:>10} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "cap (B/tick)", "drain ms", "TTR ms", "mesh reps", "mesh B", "cloud reps", "cloud B"
    );
    for cap in [2 * 1024u64, 8 * 1024, 32 * 1024] {
        let (drain_ms, stats) = run(cap);
        println!(
            "{:>12} {:>10.1} {:>8.1} {:>11} {:>11} {:>11} {:>11}",
            cap,
            drain_ms,
            stats.recovery_ns_max as f64 / 1e6,
            stats.mesh_repairs,
            stats.repair_bytes_mesh,
            stats.cloud_repairs,
            stats.repair_bytes_cloud,
        );
    }
}
