//! Fig. 3: estimation error across successive time slots.
//!
//! The paper re-estimates at later time slots starting from the previous
//! characteristic vectors: the search "ends extremely quickly in several
//! seconds with even smaller errors", and the error generally decreases
//! across time.

use ef_bench::{header, maybe_json, quick_mode};
use efdedup::experiments::{estimation_experiment, DatasetKind};

fn main() {
    let (slots_n, chunks) = if quick_mode() { (2, 300) } else { (4, 800) };
    let slots = estimation_experiment(DatasetKind::Accelerometer, slots_n, chunks, 42);
    if maybe_json(&slots) {
        return;
    }
    header("Fig. 3 — estimation error across time slots (warm-started)");
    println!(
        "{:<6} {:>10} {:>14} {:>12} {:>8}",
        "slot", "MSE", "mean err %", "iterations", "start"
    );
    for s in &slots {
        println!(
            "{:<6} {:>10.4} {:>13.2}% {:>12} {:>8}",
            s.slot,
            s.mse,
            s.mean_rel_error * 100.0,
            s.iterations,
            if s.slot == 0 { "cold" } else { "warm" }
        );
    }
    println!("\npaper: error < 4% on average, warm slots converge in seconds");
}
