//! Ablation: exact Algorithm 1 ground truth vs MinHash/LSH estimation
//! (the paper's future-work speedup for source estimation).
//!
//! Exact ground truth jointly chunks every probe subset; MinHash
//! summarizes each source once. This binary compares measurement time
//! and the downstream fit error of both paths.

use ef_bench::{header, quick_mode};
use ef_chunking::{ChunkHash, Chunker, FixedChunker};
use ef_datagen::datasets;
use efdedup::estimator::{Estimator, GroundTruth};
use efdedup::similarity::minhash_ground_truth;

fn main() {
    let sources = if quick_mode() { 3 } else { 5 };
    let chunks = if quick_mode() { 300 } else { 800 };
    let dataset = datasets::accelerometer(sources, 42);
    let chunker = FixedChunker::new(dataset.model().chunk_size()).expect("valid");
    let files: Vec<Vec<u8>> = (0..sources)
        .map(|s| dataset.file(s, 0, 0, chunks))
        .collect();

    header("Ablation: exact vs MinHash ground truth for Algorithm 1");

    let t0 = std::time::Instant::now();
    let exact = GroundTruth::measure(&chunker, &files);
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = std::time::Instant::now();
    let streams: Vec<Vec<ChunkHash>> = files
        .iter()
        .map(|f| chunker.chunk(f).into_iter().map(|c| c.hash).collect())
        .collect();
    let approx = minhash_ground_truth(&streams, 256);
    let minhash_ms = t1.elapsed().as_secs_f64() * 1e3;

    // Measurement agreement on shared subsets.
    let mut max_rel = 0.0f64;
    for (subset, &a) in approx.subsets.iter().zip(&approx.measured) {
        if let Some(i) = exact.subsets.iter().position(|s| s == subset) {
            max_rel = max_rel.max(((a - exact.measured[i]) / exact.measured[i]).abs());
        }
    }

    // Downstream fit quality.
    let estimator = Estimator::default();
    let fit_exact = estimator.fit(&exact);
    let fit_minhash = estimator.fit(&approx);

    println!(
        "{:<22} {:>14} {:>18} {:>14}",
        "path", "measure (ms)", "max subset err", "fit error"
    );
    println!(
        "{:<22} {:>14.1} {:>18} {:>13.2}%",
        "exact joint chunking",
        exact_ms,
        "-",
        fit_exact.mean_rel_error * 100.0
    );
    println!(
        "{:<22} {:>14.1} {:>17.2}% {:>13.2}%",
        "minhash signatures",
        minhash_ms,
        max_rel * 100.0,
        fit_minhash.mean_rel_error * 100.0
    );
    println!(
        "\nMinHash measures each source once (O(sources)) instead of jointly\n\
         chunking every probe subset (O(subsets x chunks)); both stay under the\n\
         paper's 4% fit-error bound."
    );
}
