//! Ablation: every partitioning algorithm head-to-head.
//!
//! SMART (portfolio greedy) against its own variants (equal-size,
//! matching-based) and the structural baselines, on the 20-node testbed
//! instance and a 100-node simulation instance: aggregate cost and
//! wall-clock partitioning time.

use ef_bench::{fmt, header, quick_mode};
use ef_netsim::NetworkConfig;
use efdedup::experiments::{instance_for, scale_instance, testbed, DatasetKind};
use efdedup::model::Snod2Instance;
use efdedup::partition::{
    DedupOnly, EqualSizeGreedy, MatchingPartitioner, NetworkOnly, Partitioner, RandomPartitioner,
    SingleRing, SmartGreedy,
};

fn run_table(title: &str, inst: &Snod2Instance, rings: usize) {
    header(title);
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "algorithm", "storage", "network", "aggregate", "rings", "time(ms)"
    );
    let algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(SmartGreedy),
        Box::new(EqualSizeGreedy),
        Box::new(MatchingPartitioner::default()),
        Box::new(NetworkOnly),
        Box::new(DedupOnly),
        Box::new(RandomPartitioner { seed: 7 }),
        Box::new(SingleRing),
    ];
    for algo in &algos {
        let start = std::time::Instant::now();
        let p = algo.partition(inst, rings);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let c = inst.total_cost(&p);
        println!(
            "{:<16} {} {} {} {:>10} {:>10.1}",
            algo.name(),
            fmt(c.storage),
            fmt(c.network),
            fmt(c.aggregate),
            p.ring_count(),
            elapsed
        );
    }
}

fn main() {
    let network = testbed(20, NetworkConfig::paper_testbed());
    let dataset = DatasetKind::Accelerometer.build(20, 42);
    let inst = instance_for(&dataset, &network, 0.02, 2, 10.0);
    run_table(
        "Ablation: partitioners on the 20-node testbed (ds1, alpha=0.02, 5 rings)",
        &inst,
        5,
    );

    let n = if quick_mode() { 60 } else { 100 };
    let scale = scale_instance(DatasetKind::TrafficVideo, n, 100.0, 0.001, 20, 42);
    run_table(
        &format!("Ablation: partitioners at simulation scale (ds2, {n} nodes, 10 rings)"),
        &scale,
        10,
    );
}
