//! Fig. 2: real vs estimated dedup ratio over probe file combinations.
//!
//! The paper samples two accelerometer sources, fits Algorithm 1 with
//! K = 3 pools (sizes searched to 200 000, probabilities in steps of
//! 0.01) and reports MSE < 0.3 with average estimation error < 4 %.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{estimation_experiment, DatasetKind};

fn main() {
    let chunks = if quick_mode() { 300 } else { 800 };
    let slots = estimation_experiment(DatasetKind::Accelerometer, 1, chunks, 42);
    if maybe_json(&slots) {
        return;
    }
    let slot = &slots[0];
    header("Fig. 2 — real vs estimated dedup ratio (accelerometer, slot 0)");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "subset", "real", "estimated", "error%"
    );
    for row in &slot.rows {
        let err = ((row.real - row.estimated) / row.real * 100.0).abs();
        println!(
            "{:<16} {} {} {:>9.2}%",
            format!("{:?}", row.subset),
            fmt(row.real),
            fmt(row.estimated),
            err
        );
    }
    println!(
        "\nMSE = {:.4} (paper: < 0.3) | mean relative error = {:.2}% (paper: < 4%)",
        slot.mse,
        slot.mean_rel_error * 100.0
    );
}
