//! Fig. 7(a): large-scale simulation — aggregate/network/storage cost vs
//! node count (up to 500 nodes, inter-node latency ~ U(0, 100) ms,
//! α = 0.001, SMART with 20 unbalanced rings, dataset 2 model).
//!
//! Paper result: SMART's aggregate cost is 43.35 % / 45.49 % below
//! Network-Only / Dedup-Only at 500 nodes, with the margin growing with
//! scale.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{scale_sweep, DatasetKind};

fn main() {
    let counts: &[usize] = if quick_mode() {
        &[50, 100]
    } else {
        &[50, 100, 200, 300, 400, 500]
    };
    let rows = scale_sweep(DatasetKind::TrafficVideo, counts, 0.001, 20, 42);
    if maybe_json(&rows) {
        return;
    }
    header("Fig. 7(a) — simulated costs vs node count (ds2, alpha = 0.001, 20 rings)");
    println!(
        "{:>7} {:<14} {:>14} {:>14} {:>14} {:>10}",
        "nodes", "algorithm", "storage", "network", "aggregate", "vs SMART"
    );
    for &n in counts {
        let smart = rows
            .iter()
            .find(|r| r.x == n as f64 && r.algorithm == "SMART")
            .expect("SMART row")
            .aggregate;
        for r in rows.iter().filter(|r| r.x == n as f64) {
            println!(
                "{:>7} {:<14} {} {} {} {:>9.2}x",
                n,
                r.algorithm,
                fmt(r.storage),
                fmt(r.network),
                fmt(r.aggregate),
                r.aggregate / smart
            );
        }
    }
    println!("\npaper: at 500 nodes SMART has 43.35%/45.49% lower aggregate cost");
}
