//! Fig. 7(b): simulated costs vs the trade-off factor α.
//!
//! Paper result: as α increases SMART's network cost share falls and its
//! storage cost rises — α tunes the network-storage trade-off; at
//! α = 0.001 SMART beats Network-Only/Dedup-Only by 60.2 %/45.1 %.

use ef_bench::{fmt, header, maybe_json, quick_mode};
use efdedup::experiments::{alpha_sweep, DatasetKind};

fn main() {
    let alphas: &[f64] = if quick_mode() {
        &[0.0001, 0.01]
    } else {
        &[0.0001, 0.001, 0.01, 0.1]
    };
    let nodes = if quick_mode() { 60 } else { 200 };
    let rows = alpha_sweep(DatasetKind::TrafficVideo, alphas, nodes, 20, 42);
    if maybe_json(&rows) {
        return;
    }
    header(&format!(
        "Fig. 7(b) — simulated costs vs alpha (ds2, {nodes} nodes, 20 rings)"
    ));
    println!(
        "{:>9} {:<14} {:>14} {:>14} {:>14} {:>10}",
        "alpha", "algorithm", "storage", "network", "aggregate", "vs SMART"
    );
    for &a in alphas {
        let smart = rows
            .iter()
            .find(|r| r.x == a && r.algorithm == "SMART")
            .expect("SMART row")
            .aggregate;
        for r in rows.iter().filter(|r| r.x == a) {
            println!(
                "{:>9} {:<14} {} {} {} {:>9.2}x",
                a,
                r.algorithm,
                fmt(r.storage),
                fmt(r.network),
                fmt(r.aggregate),
                r.aggregate / smart
            );
        }
    }
    println!("\npaper: higher alpha -> lower network share; SMART wins across alpha");
}
