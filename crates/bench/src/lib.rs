//! # ef-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (Sec. V); each prints
//! the figure's rows/series to stdout (and JSON with `--json`). See
//! `EXPERIMENTS.md` for paper-vs-measured records and DESIGN.md §3 for
//! the experiment index.
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig2_estimation` | Fig. 2 — real vs estimated dedup ratio |
//! | `fig3_estimation_time` | Fig. 3 — estimation error across time slots |
//! | `fig5a_throughput_vs_nodes` | Fig. 5(a) — throughput vs #edge nodes |
//! | `fig5b_throughput_vs_latency` | Fig. 5(b) — throughput vs WAN latency |
//! | `fig5c_ratio_vs_rings` | Fig. 5(c) — dedup ratio vs #D2-rings |
//! | `fig6a_cost_vs_rings` | Fig. 6(a) — storage/network cost vs #rings |
//! | `fig6b_throughput_vs_ringsize` | Fig. 6(b) — throughput vs ring size × inter-cloud latency |
//! | `fig6c_cost_comparison` | Fig. 6(c) — SMART vs Network-/Dedup-Only |
//! | `fig7a_scale_sim` | Fig. 7(a) — costs vs node count (simulation) |
//! | `fig7b_alpha_sweep` | Fig. 7(b) — costs vs trade-off factor α |
//!
//! Design-choice ablations (EXPERIMENTS.md):
//!
//! | Binary | Question |
//! |---|---|
//! | `ablation_chunking` | fixed-size vs content-defined chunking |
//! | `ablation_gamma` | replication factor γ sweep |
//! | `ablation_partitioners` | all partitioners head-to-head + runtime |
//! | `ablation_minhash` | exact vs MinHash/LSH ground truth |
//! | `recovery_latency` | crash-stop recovery latency vs anti-entropy interval |
//!
//! The Criterion benches in `benches/` cover the substrate hot paths
//! (chunking, hashing, ring lookup, key-value store, model evaluation,
//! partitioning).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// True when `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// True when `--quick` was passed: binaries shrink their sweeps for smoke
/// runs (used by the integration tests).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a serializable result set as JSON when `--json` is active.
/// Returns whether it printed.
pub fn maybe_json<T: Serialize>(value: &T) -> bool {
    if json_mode() {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("results serialize")
        );
        true
    } else {
        false
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a float with sensible width for table rows.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:>12.1}")
    } else {
        format!("{v:>12.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_width() {
        assert_eq!(fmt(1.5).len(), 12);
        assert_eq!(fmt(123456.7).len(), 12);
    }
}
