//! Dense matrices over GF(2⁸): just enough linear algebra for
//! Reed–Solomon encode/decode (multiply, invert via Gauss–Jordan).

use crate::gf256;

/// A row-major matrix over GF(2⁸).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    pub(crate) fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate matrix");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    pub(crate) fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// The Vandermonde matrix `V[r][c] = r^c` for distinct evaluation
    /// points `0..rows` — any `cols` rows are linearly independent, the
    /// property Reed–Solomon relies on.
    pub(crate) fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c as u32));
            }
        }
        m
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub(crate) fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    pub(crate) fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub(crate) fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = 0u8;
                for k in 0..self.cols {
                    acc = gf256::add(acc, gf256::mul(self.get(r, k), other.get(k, c)));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Builds a sub-matrix from the given rows.
    pub(crate) fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Inverts a square matrix with Gauss–Jordan elimination.
    ///
    /// Returns `None` when singular.
    pub(crate) fn inverted(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale the pivot row to 1.
            let p = a.get(col, col);
            let p_inv = gf256::inv(p);
            for c in 0..n {
                a.set(col, c, gf256::mul(a.get(col, c), p_inv));
                inv.set(col, c, gf256::mul(inv.get(col, c), p_inv));
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r != col {
                    let factor = a.get(r, col);
                    if factor != 0 {
                        for c in 0..n {
                            let av = gf256::add(a.get(r, c), gf256::mul(factor, a.get(col, c)));
                            a.set(r, c, av);
                            let iv = gf256::add(inv.get(r, c), gf256::mul(factor, inv.get(col, c)));
                            inv.set(r, c, iv);
                        }
                    }
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let t = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverts_to_itself() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverted().unwrap(), id);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Matrix::vandermonde(4, 4);
        let inv = m.inverted().expect("vandermonde is invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(4));
        assert_eq!(inv.mul(&m), Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 1);
        m.set(0, 1, 2);
        m.set(1, 0, 1);
        m.set(1, 1, 2); // duplicate row
        assert!(m.inverted().is_none());
    }

    #[test]
    fn any_square_submatrix_of_vandermonde_invertible() {
        let v = Matrix::vandermonde(8, 4);
        // All 4-row subsets of 8 rows: C(8,4) = 70 cases.
        let mut combo = [0usize, 1, 2, 3];
        loop {
            let sub = v.select_rows(&combo);
            assert!(
                sub.inverted().is_some(),
                "singular submatrix for rows {combo:?}"
            );
            // Next combination.
            let mut i = 3isize;
            while i >= 0 && combo[i as usize] == 4 + i as usize {
                i -= 1;
            }
            if i < 0 {
                break;
            }
            combo[i as usize] += 1;
            for j in (i as usize + 1)..4 {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }

    #[test]
    fn multiply_shapes() {
        let a = Matrix::vandermonde(3, 2);
        let b = Matrix::vandermonde(2, 4);
        let c = a.mul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(0).len(), 4);
    }
}
