//! Systematic Reed–Solomon codes built from a Vandermonde-derived
//! encoding matrix.

use crate::gf256;
use crate::matrix::Matrix;
use std::fmt;

/// Errors from code construction, encoding, or reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `k` or `m` is zero, or `k + m > 255` (the field size bounds the
    /// number of distinct shard indices).
    InvalidParameters {
        /// Data shards requested.
        k: usize,
        /// Parity shards requested.
        m: usize,
    },
    /// Fewer than `k` shards were present at reconstruction.
    NotEnoughShards {
        /// Shards present.
        present: usize,
        /// Shards required.
        required: usize,
    },
    /// Present shards disagree on length.
    ShardSizeMismatch,
    /// The wrong number of shard slots was supplied.
    WrongShardCount {
        /// Slots supplied.
        got: usize,
        /// Slots expected (`k + m`).
        expected: usize,
    },
    /// The requested data length exceeds what the shards can hold.
    BadDataLength,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { k, m } => {
                write!(f, "invalid code parameters k={k}, m={m}")
            }
            CodeError::NotEnoughShards { present, required } => {
                write!(f, "only {present} shards present, {required} required")
            }
            CodeError::ShardSizeMismatch => write!(f, "shards have inconsistent sizes"),
            CodeError::WrongShardCount { got, expected } => {
                write!(f, "expected {expected} shard slots, got {got}")
            }
            CodeError::BadDataLength => write!(f, "data length exceeds shard capacity"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A systematic `(k, m)` Reed–Solomon code: `k` data shards, `m` parity
/// shards, tolerating the loss of any `m` shards.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `(k+m) × k` encoding matrix whose top `k × k` block is identity.
    encode: Matrix,
}

impl ReedSolomon {
    /// Creates a `(k, m)` code.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] when `k == 0`, `m == 0`, or
    /// `k + m > 255`.
    pub fn new(k: usize, m: usize) -> Result<Self, CodeError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(CodeError::InvalidParameters { k, m });
        }
        // Systematic construction: V is (k+m) x k Vandermonde; E = V ·
        // (top k rows of V)⁻¹ has an identity top block, and any k of its
        // rows remain invertible.
        let v = Matrix::vandermonde(k + m, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.inverted().expect("vandermonde top block is invertible");
        let encode = v.mul(&top_inv);
        Ok(ReedSolomon { k, m, encode })
    }

    /// Data shards `k`.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shards `m`.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shards `k + m`.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Storage overhead factor `1 + m/k`.
    pub fn overhead(&self) -> f64 {
        1.0 + self.m as f64 / self.k as f64
    }

    /// Encodes `data` into `k + m` equal-size shards (the first `k` carry
    /// the data itself, zero-padded).
    ///
    /// # Errors
    ///
    /// Never fails for valid codes; the `Result` keeps the signature
    /// uniform with [`ReedSolomon::reconstruct`].
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let shard_len = data.len().div_ceil(self.k).max(1);
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.k + self.m);
        for i in 0..self.k {
            let start = (i * shard_len).min(data.len());
            let end = ((i + 1) * shard_len).min(data.len());
            let mut shard = data[start..end].to_vec();
            shard.resize(shard_len, 0);
            shards.push(shard);
        }
        for p in 0..self.m {
            let row = self.encode.row(self.k + p).to_vec();
            let mut parity = vec![0u8; shard_len];
            for (c, coeff) in row.iter().enumerate() {
                if *coeff != 0 {
                    for (byte, src) in parity.iter_mut().zip(&shards[c]) {
                        *byte = gf256::add(*byte, gf256::mul(*coeff, *src));
                    }
                }
            }
            shards.push(parity);
        }
        Ok(shards)
    }

    /// Reconstructs the original `data_len` bytes from any `k` surviving
    /// shards (missing slots are `None`).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongShardCount`], [`CodeError::NotEnoughShards`],
    /// [`CodeError::ShardSizeMismatch`], or [`CodeError::BadDataLength`].
    pub fn reconstruct(
        &self,
        shards: &[Option<Vec<u8>>],
        data_len: usize,
    ) -> Result<Vec<u8>, CodeError> {
        if shards.len() != self.total_shards() {
            return Err(CodeError::WrongShardCount {
                got: shards.len(),
                expected: self.total_shards(),
            });
        }
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if present.len() < self.k {
            return Err(CodeError::NotEnoughShards {
                present: present.len(),
                required: self.k,
            });
        }
        let shard_len = shards[present[0]].as_ref().expect("present").len();
        for &i in &present {
            if shards[i].as_ref().expect("present").len() != shard_len {
                return Err(CodeError::ShardSizeMismatch);
            }
        }
        if data_len > shard_len * self.k {
            return Err(CodeError::BadDataLength);
        }

        // Use the first k present shards; invert their encoding rows.
        let use_rows: Vec<usize> = present[..self.k].to_vec();
        let sub = self.encode.select_rows(&use_rows);
        let decode = sub
            .inverted()
            .expect("any k rows of the systematic matrix are invertible");

        // data_shard[r] = Σ_c decode[r][c] * received[use_rows[c]]
        let mut out = Vec::with_capacity(shard_len * self.k);
        for r in 0..self.k {
            let mut shard = vec![0u8; shard_len];
            for c in 0..self.k {
                let coeff = decode.get(r, c);
                if coeff != 0 {
                    let src = shards[use_rows[c]].as_ref().expect("present");
                    for (byte, s) in shard.iter_mut().zip(src) {
                        *byte = gf256::add(*byte, gf256::mul(coeff, *s));
                    }
                }
            }
            out.extend_from_slice(&shard);
        }
        out.truncate(data_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 1).is_err());
        assert!(ReedSolomon::new(1, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert_eq!(rs.data_shards(), 4);
        assert_eq!(rs.parity_shards(), 2);
        assert_eq!(rs.total_shards(), 6);
        assert!((rs.overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn systematic_property() {
        // The first k shards are the data itself (padded).
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(30);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards[0], &data[0..10]);
        assert_eq!(shards[1], &data[10..20]);
        assert_eq!(shards[2], &data[20..30]);
    }

    #[test]
    fn no_loss_roundtrip() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(1000);
        let shards = rs.encode(&data).unwrap();
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(rs.reconstruct(&received, 1000).unwrap(), data);
    }

    #[test]
    fn tolerates_any_m_losses() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(333);
        let shards = rs.encode(&data).unwrap();
        // Every pair of lost shards.
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut received: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                received[a] = None;
                received[b] = None;
                let restored = rs.reconstruct(&received, 333).unwrap();
                assert_eq!(restored, data, "losing shards {a},{b}");
            }
        }
    }

    #[test]
    fn too_many_losses_detected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let shards = rs.encode(&sample_data(100)).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None;
        assert!(matches!(
            rs.reconstruct(&received, 100).unwrap_err(),
            CodeError::NotEnoughShards {
                present: 3,
                required: 4
            }
        ));
    }

    #[test]
    fn shard_slot_and_size_validation() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let shards = rs.encode(b"hello world").unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert!(matches!(
            rs.reconstruct(&received[..2], 11).unwrap_err(),
            CodeError::WrongShardCount {
                got: 2,
                expected: 3
            }
        ));
        received[1] = Some(vec![0; 99]);
        assert_eq!(
            rs.reconstruct(&received, 11).unwrap_err(),
            CodeError::ShardSizeMismatch
        );
    }

    #[test]
    fn bad_data_length_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let shards = rs.encode(b"abcd").unwrap();
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert!(matches!(
            rs.reconstruct(&received, 1000).unwrap_err(),
            CodeError::BadDataLength
        ));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        for len in [0usize, 1, 3, 4, 5] {
            let data = sample_data(len);
            let shards = rs.encode(&data).unwrap();
            assert_eq!(shards.len(), 6);
            let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            received[1] = None;
            received[4] = None;
            assert_eq!(rs.reconstruct(&received, len).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn parity_only_reconstruction() {
        // Reconstruct purely from parity + one data shard: k=2, m=2,
        // lose both... no: lose k-1 data shards and use parity.
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = sample_data(64);
        let shards = rs.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None; // all data shards gone
        let restored = rs.reconstruct(&received, 64).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CodeError::InvalidParameters { k: 0, m: 0 },
            CodeError::NotEnoughShards {
                present: 1,
                required: 2,
            },
            CodeError::ShardSizeMismatch,
            CodeError::WrongShardCount {
                got: 1,
                expected: 2,
            },
            CodeError::BadDataLength,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
