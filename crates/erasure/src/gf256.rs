//! Arithmetic in GF(2⁸) with the AES polynomial `x⁸+x⁴+x³+x+1` (0x11b).
//!
//! Multiplication and division go through log/antilog tables built once
//! at first use from the generator element 3.

use std::sync::OnceLock;

/// The irreducible polynomial (without the x⁸ term) used for reduction.
const POLY: u16 = 0x11b;

struct Tables {
    /// exp[i] = g^i for i in 0..255 (extended to 510 to skip a modulo).
    exp: [u8; 512],
    /// log[x] = i such that g^i = x, for x in 1..=255.
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 3 = x + 1: x*3 = (x<<1) ^ x.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Addition in GF(2⁸) (bitwise XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2⁸).
///
/// # Example
///
/// ```
/// use ef_erasure::gf256;
/// assert_eq!(gf256::mul(0, 7), 0);
/// assert_eq!(gf256::mul(1, 7), 7);
/// // 2 * 0x80 wraps through the reduction polynomial.
/// assert_eq!(gf256::mul(2, 0x80), 0x1b);
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics for zero, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics when `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + 255 - t.log[b as usize] as usize]
}

/// Exponentiation `base^e` (e interpreted as an integer).
pub fn pow(base: u8, mut e: u32) -> u8 {
    if base == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    let t = tables();
    e %= 255;
    t.exp[(t.log[base as usize] as u32 * e % 255) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(add(7, 7), 0);
    }

    #[test]
    fn multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(1, a), a);
        }
    }

    #[test]
    fn multiplication_commutative_and_associative() {
        // Spot-check over a grid (full 256^3 is too slow in debug).
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(23) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(1, a), inv(a));
        }
    }

    #[test]
    fn division_roundtrip() {
        for a in (0..=255u8).step_by(5) {
            for b in (1..=255u8).step_by(7) {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn known_aes_field_values() {
        // From the AES specification's GF(256) examples.
        assert_eq!(mul(0x57, 0x83), 0xc1);
        assert_eq!(mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for base in [2u8, 3, 5, 0x1d] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(base, e), acc, "base {base} e {e}");
                acc = mul(acc, base);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }
}
