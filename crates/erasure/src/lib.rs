//! # ef-erasure — Reed–Solomon erasure coding over GF(2⁸)
//!
//! The paper lists erasure-coded replica storage as future work ("to make
//! the data more reliable and save more storage space, we intend to apply
//! erasure code to store data replicas"). This crate implements that
//! extension from scratch:
//!
//! * [`gf256`] — the finite field GF(2⁸) with log/antilog tables,
//! * [`ReedSolomon`] — a systematic `(k, m)` code: `k` data shards plus
//!   `m` parity shards; any `k` of the `k + m` shards reconstruct the
//!   original data.
//!
//! Compared to γ-way replication, a `(k, m)` code stores `1 + m/k`× the
//! data while tolerating `m` losses — e.g. RS(4, 2) tolerates two lost
//! shards at 1.5× storage where 3-way replication needs 3×. The
//! `ef-cloudstore` crate uses this for chunk durability, and an ablation
//! bench compares the two (DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use ef_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(4, 2)?;
//! let shards = rs.encode(b"the quick brown fox jumps over the lazy dog")?;
//! assert_eq!(shards.len(), 6);
//!
//! // Lose any two shards...
//! let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! received[0] = None;
//! received[5] = None;
//! // ...and still reconstruct the original bytes.
//! let restored = rs.reconstruct(&received, 43)?;
//! assert_eq!(&restored, b"the quick brown fox jumps over the lazy dog");
//! # Ok::<(), ef_erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
mod matrix;
mod rs;

pub use rs::{CodeError, ReedSolomon};
