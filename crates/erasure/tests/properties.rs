//! Property tests: Reed–Solomon reconstructs under arbitrary loss
//! patterns of at most `m` shards, for arbitrary data and parameters.

use ef_erasure::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_under_random_losses(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        k in 1usize..8,
        m in 1usize..5,
        loss_seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let shards = rs.encode(&data).unwrap();
        prop_assert_eq!(shards.len(), k + m);

        // Deterministically pick up to m slots to drop.
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut state = loss_seed;
        let mut dropped = 0;
        while dropped < m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % (k + m);
            if received[idx].is_some() {
                received[idx] = None;
                dropped += 1;
            }
        }
        let restored = rs.reconstruct(&received, data.len()).unwrap();
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn parity_shards_have_data_shard_length(
        data in proptest::collection::vec(any::<u8>(), 1..500),
        k in 1usize..6,
        m in 1usize..4,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let shards = rs.encode(&data).unwrap();
        let len = shards[0].len();
        prop_assert!(shards.iter().all(|s| s.len() == len));
        prop_assert!(len * k >= data.len());
        prop_assert!(len * k < data.len() + k.max(2));
    }
}
