// Fixture: D001 firing shapes. Not compiled by cargo (lives under
// tests/fixtures/, which the workspace scan also skips).
use std::collections::{HashMap, HashSet};

struct State {
    uplinks: HashMap<u64, u32>,
}

fn field_iteration(s: &mut State) -> u32 {
    let mut total = 0;
    for v in s.uplinks.values() {
        total += v;
    }
    total
}

fn direct_for_loop(s: &State) {
    for (_k, _v) in &s.uplinks {}
}

fn local_binding() -> usize {
    let seen: HashSet<u64> = HashSet::new();
    seen.iter().count()
}

fn ctor_binding() {
    let pending = HashMap::new();
    pending.insert(1u8, 2u8);
    let _ = pending.keys().min();
}

fn drains(s: &mut State) {
    for (_k, _v) in s.uplinks.drain() {}
}

fn non_iteration_is_fine(s: &State) -> usize {
    // Lookups and size queries do not observe ordering.
    s.uplinks.len() + usize::from(s.uplinks.contains_key(&1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u8, u8> = HashMap::new();
        for _ in m.keys() {}
    }
}
