// Fixture: D004 firing shapes (float accumulation over unordered iterators).
use std::collections::HashMap;

struct Metrics {
    samples: HashMap<u64, f64>,
}

fn unordered_sum(m: &Metrics) -> f64 {
    m.samples.values().sum::<f64>()
}

fn unordered_fold(m: &Metrics) -> f64 {
    m.samples.values().fold(0.0, |acc, v| acc + v)
}

fn integer_sum_is_d001_only(m: &Metrics) -> usize {
    // Iteration still fires D001, but integer accumulation is
    // order-independent, so no D004.
    m.samples.keys().map(|k| *k as usize).sum::<usize>()
}
