// Fixture: S003 — a directive naming a rule id that does not exist is
// reported at its own position and silences nothing.

pub fn typo_rule(v: Option<u32>) -> u32 {
    // simlint::allow(D030): transposed digits
    v.unwrap()
}

pub fn mixed_known_unknown(c: &std::collections::HashMap<u64, u64>) -> usize {
    // simlint::allow(D001, D999): one real rule, one not
    c.keys().count()
}
