// Fixture: E001 phantom-variant drill — the enum carries a variant the
// wildcard handler was never written for; the `_` arm that would
// silently swallow it is exactly what E001 reports, and the revisited
// handler that enumerates every variant is clean.

pub enum ChaosEvent {
    Crash,
    Revive,
    /// The variant added after the handler below was written.
    PhantomPartition,
}

pub fn handler_written_before_the_variant(e: &ChaosEvent) -> &'static str {
    match e {
        ChaosEvent::Crash => "crash",
        ChaosEvent::Revive => "revive",
        _ => "swallowed",
    }
}

pub fn handler_revisited(e: &ChaosEvent) -> &'static str {
    match e {
        ChaosEvent::Crash => "crash",
        ChaosEvent::Revive => "revive",
        ChaosEvent::PhantomPartition => "partition",
    }
}
