// Fixture: the fingerprint-cache shapes. The real cache (ef-kvstore's
// FingerprintCache) keeps BTreeMap shards and a BTreeMap recency index
// precisely to avoid every finding below; this fixture pins the linter
// against the tempting HashMap rewrite of the same data structure.
use std::collections::{BTreeMap, HashMap};

struct HashShard {
    entries: HashMap<Vec<u8>, u64>,
}

fn evict_scans_in_hash_order(shard: &mut HashShard) -> Option<Vec<u8>> {
    // Picking a victim by iterating the map makes eviction order — and
    // therefore every downstream hit/miss counter — nondeterministic.
    let victim = shard.entries.keys().next().cloned();
    if let Some(k) = &victim {
        shard.entries.remove(k);
    }
    victim
}

fn stamp_with_wall_clock(shard: &mut HashShard, key: Vec<u8>) {
    // Recency from the wall clock instead of a logical tick: two runs
    // of the same schedule produce different LRU orders.
    let stamp = std::time::Instant::now();
    shard.entries.insert(key, stamp.elapsed().as_nanos() as u64);
}

fn hit_rate_folds_floats_in_hash_order(per_shard: &HashMap<u32, f64>) -> f64 {
    per_shard.values().sum::<f64>()
}

struct BTreeShard {
    entries: BTreeMap<Vec<u8>, u64>,
    order: BTreeMap<u64, Vec<u8>>,
}

fn deterministic_evict(shard: &mut BTreeShard) -> Option<Vec<u8>> {
    // The ordered recency index makes first-key eviction replayable;
    // none of this observes hash order.
    let (tick, key) = {
        let (t, k) = shard.order.iter().next()?;
        (*t, k.clone())
    };
    shard.order.remove(&tick);
    shard.entries.remove(&key);
    Some(key)
}

fn lookups_are_fine(shard: &HashShard, key: &[u8]) -> bool {
    // Point lookups and size queries never observe iteration order.
    shard.entries.contains_key(key) || shard.entries.len() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u8, u8> = HashMap::new();
        for _ in m.keys() {}
    }
}
