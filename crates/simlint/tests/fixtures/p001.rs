// Fixture: P001 — unchecked indexing on the hot path. Flagged sites
// index growable storage with no covering bound check; fixed-size
// arrays, literal indices, ranges, and len()/get()-covered bases are
// exempt.

pub struct Shards {
    gear: [u64; 256],
    present: Vec<u64>,
}

impl Shards {
    pub fn unchecked(&self, word: usize) -> u64 {
        self.present[word]
    }

    pub fn covered(&self, word: usize) -> u64 {
        if word < self.present.len() {
            self.present[word]
        } else {
            0
        }
    }

    pub fn fixed_array(&self, b: u8) -> u64 {
        self.gear[b as usize]
    }
}

pub fn literal_and_range(data: &[u8]) -> (u8, &[u8]) {
    (data[0], &data[2..4])
}

pub fn get_based(data: &[u8], i: usize) -> u8 {
    data.get(i).copied().unwrap_or(0)
}

pub fn local_fixed(i: usize) -> u64 {
    let table = [0u64; 16];
    table[i % 16]
}

pub fn plain_unchecked(data: &[u8], i: usize) -> u8 {
    data[i]
}
