// Fixture: D002 firing shapes.
use std::time::{Duration, Instant};

fn wall_clock() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

fn system_clock() -> u64 {
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

fn os_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    x
}

fn ambient_seed() -> u64 {
    std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn duration_alone_is_fine() -> Duration {
    // Duration is a plain value type; only clock reads are banned.
    Duration::from_millis(5)
}
