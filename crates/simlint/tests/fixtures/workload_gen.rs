// Fixture: the workload-generator shapes. The real generators
// (ef-datagen's workload module) derive every byte from a DetRng
// substream keyed by the corpus label precisely to avoid each finding
// below; this fixture pins the linter against the tempting
// entropy-and-HashMap rewrite of the same machinery.
use std::collections::{BTreeMap, HashMap};

struct LooseCorpus {
    versions: HashMap<u32, Vec<u8>>,
    edit_rate: HashMap<u32, f64>,
}

fn seed_from_wall_clock() -> u64 {
    // Seeding a corpus from the host clock: two "identical" benchmark
    // runs chunk different bytes and every pinned ratio drifts.
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_nanos() as u64).unwrap()
}

fn emit_versions_in_hash_order(corpus: &LooseCorpus) -> Vec<u8> {
    // Iterating the version map concatenates streams in hash order —
    // the corpus bytes (and thus every golden digest) change per run.
    let mut out = Vec::new();
    for (_v, bytes) in &corpus.versions {
        out.extend_from_slice(bytes);
    }
    out
}

fn mean_edit_rate_folds_floats_in_hash_order(corpus: &LooseCorpus) -> f64 {
    // Float accumulation in hash order: the dedup-ratio closed form is
    // fed a run-dependent edit rate.
    corpus.edit_rate.values().sum::<f64>() / corpus.edit_rate.len() as f64
}

struct SeededCorpus {
    ordered_versions: BTreeMap<u32, Vec<u8>>,
}

fn emit_versions_in_key_order(corpus: &SeededCorpus, seed: u64) -> Vec<u8> {
    // The deterministic shape: ordered map, caller-supplied seed mixed
    // with the version index — same seed, same bytes, forever.
    let mut out = Vec::new();
    for (v, bytes) in &corpus.ordered_versions {
        out.extend_from_slice(bytes);
        out.push((seed ^ u64::from(*v)) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let c: HashMap<u32, f64> = HashMap::new();
        assert!(c.values().sum::<f64>() == 0.0);
    }
}
