// Fixture: determinism mistakes that are easy to make in WAL-recovery /
// anti-entropy code, written in that subsystem's shape. The real
// implementation (ef-kvstore storage.rs / antientropy.rs) must never
// regress into any of these; the pinning test records each firing span.

use std::collections::HashMap;

struct Wal {
    records: Vec<Vec<u8>>,
}

struct Recovered {
    entries: HashMap<Vec<u8>, Vec<u8>>,
    latencies: HashMap<u32, f64>,
}

impl Recovered {
    // BAD: replaying recovered entries in RandomState order makes the
    // rebuilt memtable's flush order (and any downstream event order)
    // run-dependent. The real replay iterates the WAL, which is a Vec.
    fn replay_in_hash_order(&self) -> usize {
        let mut n = 0;
        for (_k, _v) in &self.entries {
            n += 1;
        }
        n
    }

    // BAD: stamping a snapshot with wall-clock time breaks bit-identical
    // replay; snapshots must be stamped with SimTime from the event loop.
    fn snapshot_stamp(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }

    // BAD: a torn WAL record is a fault to surface, not a panic; and
    // hash-ordered float accumulation of recovery latencies is
    // run-dependent even for an identical latency set.
    fn total_latency(&self, wal: &Wal) -> f64 {
        let first = wal.records.first().unwrap();
        let _ = first.len();
        self.latencies.values().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    // Test code may unwrap: a missing fixture record is a test bug.
    #[test]
    fn wal_roundtrip() {
        let wal = super::Wal {
            records: vec![vec![1, 2, 3]],
        };
        assert_eq!(wal.records.first().unwrap().len(), 3);
    }
}
