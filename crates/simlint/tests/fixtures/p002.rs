// Fixture: P002 — unchecked +/*/<< arithmetic on the hot path. A
// numeric-literal operand makes the growth rate inspectable and is
// exempt; wrapping/checked/saturating forms are the sanctioned
// spelling for everything else.

pub fn flagged(a: u64, b: u64, xs: &[u64]) -> u64 {
    let mut acc = a + b;
    acc += b;
    acc = acc * b;
    acc *= b;
    let shifted = a << b;
    acc += xs.len() as u64;
    acc.wrapping_add(shifted)
}

pub fn exempt(a: u64, i: usize) -> (u64, u64, u64, u64) {
    let one = a + 1;
    let rev = 1 + (i as u64);
    let bytes = a * 8;
    let bit = 1u64 << 3;
    (one, rev, bytes, bit)
}

pub fn sanctioned(a: u64, b: u64) -> u64 {
    a.wrapping_add(b).saturating_mul(b).wrapping_shl(b as u32)
}
