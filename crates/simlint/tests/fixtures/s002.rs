// Fixture: S002 — an allow whose covered lines produce no finding is
// itself stale. The live directive covers a real D003 and stays quiet;
// the stale ones are reported at their own positions.

pub fn live_allow(v: Option<u32>) -> u32 {
    // simlint::allow(D003): fixture contract guarantees Some
    v.unwrap()
}

pub fn stale_allow(v: Option<u32>) -> u32 {
    // simlint::allow(D003): nothing panics here any more
    v.unwrap_or(0)
}

pub fn detached_allow(v: Option<u32>) -> u32 {
    // simlint::allow(D003): blank line below detaches this directive

    v.unwrap_or(0)
}

pub fn wrong_rule_allow(c: &std::collections::HashMap<u64, u64>) -> usize {
    // simlint::allow(D003): directive names the wrong rule
    c.keys().count()
}
