// Fixture: checksum-verification sites in the shape of the integrity
// pipeline (wire frames, WAL records, scrub). A mismatch is a fault to
// surface and repair — never a panic — and a lint suppression at a
// verify site must say *why* it is safe; bare directives are rejected
// and silence nothing.

pub struct Frame {
    payload: Vec<u8>,
    crc: u64,
}

fn checksum(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

// BAD: a corrupted frame is data to reject, not a crash; the bare
// directive is itself a violation and does not silence the panic.
pub fn reject_or_die(f: &Frame) {
    if checksum(&f.payload) != f.crc {
        // simlint::allow(D003)
        panic!("frame checksum mismatch");
    }
}

// BAD: empty reason — still bare, still rejected.
pub fn first_byte(f: &Frame) -> u8 {
    // simlint::allow(D003):
    *f.payload.first().unwrap()
}

// GOOD: a reasoned directive at a verify site is honored.
pub fn verified_len(f: &Frame) -> Option<usize> {
    if checksum(&f.payload) != f.crc {
        return None;
    }
    // simlint::allow(D003): the mismatch arm above already returned None
    let first = f.payload.first().unwrap();
    Some(*first as usize + f.payload.len())
}
