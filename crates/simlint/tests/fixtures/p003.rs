// Fixture: P003 — panicking combinators on the hot path report as
// P003 (D003 escalated for the panic-freedom set); test modules stay
// exempt.

pub fn hot_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn hot_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn hot_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_may_unwrap() {
        Some(1u32).unwrap();
    }
}
