// Fixture: D003 firing shapes.

fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn expects(v: Option<u32>) -> u32 {
    v.expect("value must exist")
}

fn panics(flag: bool) {
    if flag {
        panic!("boom");
    }
}

fn combinators_are_fine(v: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else never panic.
    v.unwrap_or(0).max(v.unwrap_or_else(|| 1))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("unreachable in test");
        }
    }
}
