// Fixture: E001 over the Byzantine fault family — a trust-layer
// dispatcher written before `HintFlood` existed swallows the new
// attack with its `_` arm; the revisited handler that enumerates every
// behavior is clean, as is a *guarded* wildcard (it still forces a
// decision when the enum grows).

pub enum ByzantineFault {
    LieOnLookup,
    ServeGarbage,
    EquivocateSummary,
    /// The attack added after the dispatcher below was written.
    HintFlood,
}

pub fn dispatcher_written_before_the_attack(f: &ByzantineFault) -> &'static str {
    match f {
        ByzantineFault::LieOnLookup => "challenge",
        ByzantineFault::ServeGarbage => "verify",
        _ => "swallowed",
    }
}

pub fn dispatcher_revisited(f: &ByzantineFault) -> &'static str {
    match f {
        ByzantineFault::LieOnLookup => "challenge",
        ByzantineFault::ServeGarbage => "verify",
        ByzantineFault::EquivocateSummary => "strike",
        ByzantineFault::HintFlood => "suppress",
    }
}

pub fn guarded_wildcard_is_out_of_scope(f: &ByzantineFault, armed: bool) -> &'static str {
    match f {
        ByzantineFault::LieOnLookup => "challenge",
        _ if armed => "strike",
        ByzantineFault::ServeGarbage => "verify",
        ByzantineFault::EquivocateSummary => "strike",
        ByzantineFault::HintFlood => "suppress",
    }
}
