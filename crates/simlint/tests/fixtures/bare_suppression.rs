// Fixture: suppressions without a justification are rejected (S001)
// and do NOT silence the underlying finding.
use std::collections::HashMap;

struct Cache {
    entries: HashMap<u64, u64>,
}

fn bare_directive(c: &Cache) -> usize {
    // simlint::allow(D001)
    c.entries.keys().count()
}

fn empty_reason(c: &Cache) -> usize {
    // simlint::allow(D001):
    c.entries.values().count()
}

fn unknown_rule(c: &Cache) -> usize {
    // simlint::allow(D999): not a real rule
    c.entries.iter().count()
}
