// Fixture: directive-stack resolution. A stack of directives all
// resolves to the first code line below it — never to a sibling
// directive — and an ordinary comment between a directive and its code
// does not break the chain.

use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, u64>,
}

pub fn stacked(c: &Cache) -> f64 {
    // simlint::allow(D001): sum over commutative values
    // simlint::allow(D004): bounded accumulation, fixture contract
    c.entries.values().map(|v| *v as f64).sum::<f64>()
}

pub fn through_comment(c: &Cache) -> usize {
    // simlint::allow(D001): count is order-independent
    // (the directive above must look through this plain comment)
    c.entries.keys().count()
}
