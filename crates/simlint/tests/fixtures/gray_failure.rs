// Fixture: the gray-failure mitigation shapes. The real estimator
// (ef-kvstore's gray module) keeps integer Jacobson/Karels state in
// BTreeMap-keyed per-peer slots precisely to avoid every finding below;
// this fixture pins the linter against the tempting float-and-HashMap
// rewrite of the same machinery.
use std::collections::{BTreeMap, HashMap};

struct HashTimers {
    rtt: HashMap<u32, f64>,
    slow: HashMap<u32, bool>,
}

fn sample_with_wall_clock(timers: &mut HashTimers, peer: u32) {
    // An RTT sample from the host clock: two replays of the same
    // schedule adapt their timers differently.
    let start = std::time::Instant::now();
    timers.rtt.insert(peer, start.elapsed().as_secs_f64());
}

fn hedge_target_in_hash_order(timers: &HashTimers) -> Option<u32> {
    // Steering the hedge by map iteration picks a different backup
    // every run: hedge wins, RTT samples and slow marks all diverge.
    timers.slow.keys().next().copied()
}

fn mean_rtt_folds_floats_in_hash_order(timers: &HashTimers) -> f64 {
    // Float accumulation in hash order: the mean itself is run-dependent.
    timers.rtt.values().sum::<f64>() / timers.rtt.len() as f64
}

fn rto_unwraps_an_unsampled_peer(timers: &HashTimers, peer: u32) -> f64 {
    // A peer with no samples yet is the normal cold start, not a bug.
    *timers.rtt.get(&peer).unwrap()
}

struct IntegerTimers {
    srtt_ns: BTreeMap<u32, u64>,
    rttvar_ns: BTreeMap<u32, u64>,
}

fn deterministic_rto(timers: &IntegerTimers, peer: u32) -> Option<u64> {
    // Integer Jacobson/Karels over ordered maps: replayable, no float
    // drift, and no hash order observed anywhere.
    let srtt = timers.srtt_ns.get(&peer)?;
    let var = timers.rttvar_ns.get(&peer)?;
    Some(srtt + 4 * var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let t: HashMap<u32, f64> = HashMap::new();
        assert!(t.values().sum::<f64>() == 0.0);
    }
}
