// Fixture: E001 — matches over fault enums may not use a bare `_`
// wildcard arm. Non-fault enums, guarded wildcards, and matches that
// only *produce* fault values in arm bodies are out of scope.

pub enum ChaosEvent {
    Crash,
    Revive,
}

pub enum Color {
    Red,
    Blue,
}

pub fn wildcard_over_fault(e: &ChaosEvent) -> u32 {
    match e {
        ChaosEvent::Crash => 1,
        _ => 0,
    }
}

pub fn exhaustive_over_fault(e: &ChaosEvent) -> u32 {
    match e {
        ChaosEvent::Crash => 1,
        ChaosEvent::Revive => 2,
    }
}

pub fn wildcard_over_plain(c: &Color) -> u32 {
    match c {
        Color::Red => 1,
        _ => 0,
    }
}

pub fn guarded_wildcard(e: &ChaosEvent, armed: bool) -> u32 {
    match e {
        ChaosEvent::Crash if armed => 1,
        _ if armed => 2,
        ChaosEvent::Crash => 3,
        ChaosEvent::Revive => 4,
    }
}

pub fn fault_in_body_only(code: u32) -> ChaosEvent {
    match code {
        0 => ChaosEvent::Crash,
        _ => ChaosEvent::Revive,
    }
}
