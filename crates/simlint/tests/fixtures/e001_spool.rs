// Fixture: E001 spool-enum drill — the disaster-tolerance spool enums
// (`SpoolClass`, `SpoolDest`) joined the policed fault set when the
// durable upload spool landed. A wildcard over either would silently
// misroute a priority class or destination variant added later.

pub enum SpoolClass {
    Critical,
    Background,
    /// The class added after the planner below was written.
    PhantomScrub,
}

pub enum SpoolDest {
    Cloud,
    Node(u32),
}

pub fn planner_written_before_the_class(c: &SpoolClass) -> u8 {
    match c {
        SpoolClass::Critical => 0,
        _ => 1,
    }
}

pub fn router_revisited(d: &SpoolDest) -> &'static str {
    match d {
        SpoolDest::Cloud => "uplink",
        SpoolDest::Node(_) => "peer",
    }
}
