// Fixture: justified suppressions are honored.
use std::collections::HashMap;

struct Cache {
    entries: HashMap<u64, u64>,
}

fn justified_same_line(c: &Cache) -> u64 {
    c.entries.values().copied().max().unwrap_or(0) // simlint::allow(D001): max() is order-independent
}

fn justified_line_above(c: &Cache) -> usize {
    // simlint::allow(D001): count is order-independent
    c.entries.keys().count()
}

fn stacked_directives(c: &Cache) -> f64 {
    // simlint::allow(D001): sum over commutative small ints cast late
    // simlint::allow(D004): accumulation bounded by test tolerance
    c.entries.values().map(|v| *v as f64).sum::<f64>()
}

fn panic_with_reason(v: Option<u32>) -> u32 {
    // simlint::allow(D003): validated by caller contract in fixture
    v.unwrap()
}
