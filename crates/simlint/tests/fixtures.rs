//! Fixture suite: every rule id must fire with exact spans on the
//! known-bad snippets, honor justified suppressions, and reject bare
//! ones.

use ef_simlint::{lint_source, FileCtx, Finding, RuleId};

const SIM_CTX: FileCtx = FileCtx {
    sim_critical: true,
    d002_applies: true,
};

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let src = std::fs::read_to_string(format!("{path}{name}")).expect("fixture exists");
    lint_source(&src, &SIM_CTX)
}

fn spans(findings: &[Finding], rule: RuleId) -> Vec<(u32, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn d001_fires_with_exact_spans() {
    let findings = lint_fixture("d001.rs");
    assert_eq!(
        spans(&findings, RuleId::D001),
        vec![
            (11, 24), // s.uplinks.values()
            (18, 24), // for (_k, _v) in &s.uplinks
            (23, 10), // seen.iter()
            (29, 21), // pending.keys()
            (33, 31), // s.uplinks.drain()
        ],
    );
    // Lookups, inserts, len(): no findings; #[cfg(test)] module: exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::D001));
}

#[test]
fn d002_fires_with_exact_spans() {
    let findings = lint_fixture("d002.rs");
    assert_eq!(
        spans(&findings, RuleId::D002),
        vec![
            (2, 27),  // use std::time::{.., Instant}
            (5, 17),  // Instant::now()
            (10, 26), // std::time::SystemTime::now()
            (15, 25), // rand::thread_rng()
            (16, 24), // rand::random()
            (21, 15), // std::env::var("SEED")
        ],
    );
    // `Duration` alone never fires.
    assert!(findings.iter().all(|f| f.rule == RuleId::D002));
}

#[test]
fn d003_fires_with_exact_spans() {
    let findings = lint_fixture("d003.rs");
    assert_eq!(
        spans(&findings, RuleId::D003),
        vec![
            (4, 7),  // v.unwrap()
            (8, 7),  // v.expect(..)
            (13, 9), // panic!
        ],
    );
    // unwrap_or / unwrap_or_else and the #[cfg(test)] module are exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::D003));
}

#[test]
fn d004_fires_with_exact_spans() {
    let findings = lint_fixture("d004.rs");
    assert_eq!(
        spans(&findings, RuleId::D004),
        vec![
            (9, 24),  // .sum::<f64>() after .values()
            (13, 24), // .fold(0.0, |acc, v| acc + v)
        ],
    );
    // The same chains also fire D001 (iteration itself), including the
    // integer-sum chain, which must NOT fire D004.
    assert_eq!(spans(&findings, RuleId::D001).len(), 3);
    assert!(findings
        .iter()
        .all(|f| matches!(f.rule, RuleId::D001 | RuleId::D004)));
}

#[test]
fn justified_suppressions_are_honored() {
    let findings = lint_fixture("suppressed.rs");
    // Every finding is covered by a reasoned directive; none active.
    assert!(
        findings.iter().all(|f| f.suppressed),
        "unsuppressed: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
    // ... and the directives covered real findings of every kind used.
    let suppressed_rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert!(suppressed_rules.contains(&RuleId::D001));
    assert!(suppressed_rules.contains(&RuleId::D004));
    assert!(suppressed_rules.contains(&RuleId::D003));
}

#[test]
fn bare_suppressions_are_rejected() {
    let findings = lint_fixture("bare_suppression.rs");
    // Three directives lack a justification (bare, empty reason,
    // unknown rule) -> three S001 findings ...
    assert_eq!(spans(&findings, RuleId::S001).len(), 3);
    // ... and none of them silences the underlying D001.
    assert_eq!(spans(&findings, RuleId::D001).len(), 3);
}

#[test]
fn suppressed_findings_do_not_count_as_violations() {
    let report = ef_simlint::Report {
        findings: lint_fixture("suppressed.rs"),
        files_scanned: 1,
    };
    assert!(report.violations(&[]).is_empty());
    assert_eq!(report.suppressed_count(), report.findings.len());
}

#[test]
fn s001_cannot_be_allowed() {
    let report = ef_simlint::Report {
        findings: lint_fixture("bare_suppression.rs"),
        files_scanned: 1,
    };
    // Allowing every D-rule still leaves the S001s as violations.
    let allowed = [RuleId::D001, RuleId::D002, RuleId::D003, RuleId::D004];
    assert_eq!(report.violations(&allowed).len(), 3);
}

#[test]
fn json_report_is_well_formed() {
    let report = ef_simlint::Report {
        findings: lint_fixture("d003.rs"),
        files_scanned: 1,
    };
    let json = report.to_json(&[]);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"rule\":\"D003\""));
    assert!(json.contains("\"violations\":3"));
}

#[test]
fn checksum_sites_carry_no_bare_suppressions() {
    // The integrity pipeline's verify sites, in their own shape: a
    // checksum mismatch must be surfaced as data, and any suppression
    // at such a site must be justified in-source.
    let findings = lint_fixture("integrity_checks.rs");
    // Two bare directives at the verify sites → S001 ...
    let mut s001: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == RuleId::S001)
        .map(|f| f.line)
        .collect();
    s001.sort_unstable();
    assert_eq!(s001, vec![22, 29]);
    // ... and neither silences the panicking code underneath.
    assert_eq!(spans(&findings, RuleId::D003), vec![(23, 9), (30, 24)]);
    // The reasoned directive on the guarded read is honored.
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::D003 && f.suppressed && f.line == 39));
    // The checksum fold itself is integer math over a slice: no D004
    // (float accumulation) and no D001 (hash-order iteration).
    assert!(findings
        .iter()
        .all(|f| matches!(f.rule, RuleId::D003 | RuleId::S001)));
}

#[test]
fn cache_shard_shapes_fire_and_the_btree_cache_is_clean() {
    // The fingerprint cache's tempting mistakes, in its own shape:
    // hash-ordered eviction scans, wall-clock recency stamps, and a
    // float hit-rate fold in hash order.
    let findings = lint_fixture("cache_shard.rs");
    assert_eq!(spans(&findings, RuleId::D001), vec![(14, 32), (29, 15)]);
    assert_eq!(spans(&findings, RuleId::D002), vec![(24, 28)]);
    assert_eq!(spans(&findings, RuleId::D004), vec![(29, 24)]);
    // The BTreeMap shard — the real FingerprintCache's layout — and the
    // point lookups below it produce no findings at all.
    assert!(
        findings.iter().all(|f| f.line < 32),
        "the deterministic half of the fixture fired: {:?}",
        findings
            .iter()
            .filter(|f| f.line >= 32)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn the_real_fingerprint_cache_lints_clean() {
    // The production cache must exemplify what the fixture above pins:
    // BTreeMap shards, logical recency ticks, no unordered iteration.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../kvstore/src/cache.rs"
    ))
    .expect("cache source readable");
    let findings = lint_source(&src, &SIM_CTX);
    assert!(
        findings.iter().all(|f| f.suppressed),
        "FingerprintCache has unsuppressed findings: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn gray_failure_shapes_fire_every_rule() {
    // The gray-failure mitigation's tempting mistakes, in its own
    // shape: wall-clock RTT samples, hash-ordered hedge steering, a
    // float mean folded in hash order, and a cold-start unwrap.
    let findings = lint_fixture("gray_failure.rs");
    assert_eq!(
        spans(&findings, RuleId::D001),
        vec![(23, 17), (28, 16)] // hedge steering; mean-RTT fold
    );
    assert_eq!(spans(&findings, RuleId::D002), vec![(16, 28)]); // Instant::now
    assert_eq!(spans(&findings, RuleId::D003), vec![(33, 28)]); // cold-start unwrap
    assert_eq!(spans(&findings, RuleId::D004), vec![(28, 25)]); // float sum
                                                                // The integer Jacobson/Karels half and the #[cfg(test)] module are
                                                                // clean: every finding sits in the HashTimers block.
    assert!(findings.iter().all(|f| f.line < 36));
}

#[test]
fn the_real_rtt_estimator_lints_clean() {
    // The production gray-failure module must exemplify what the
    // fixture above pins: integer estimator state, BTreeMap-keyed
    // per-peer timers, no wall clock, no unordered iteration.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../kvstore/src/gray.rs"
    ))
    .expect("gray-failure source readable");
    let findings = lint_source(&src, &SIM_CTX);
    assert!(
        findings.iter().all(|f| f.suppressed),
        "gray module has unsuppressed findings: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn wal_recovery_shapes_fire_every_rule() {
    // The crash-recovery subsystem's tempting mistakes, in its own
    // shape: hash-ordered WAL replay, wall-clock snapshot stamps,
    // panicking record decode, hash-ordered latency accumulation.
    let findings = lint_fixture("wal_recovery.rs");
    assert_eq!(spans(&findings, RuleId::D001), vec![(23, 31), (44, 24)]);
    assert_eq!(spans(&findings, RuleId::D002), vec![(32, 20)]);
    assert_eq!(spans(&findings, RuleId::D003), vec![(42, 41)]);
    assert_eq!(spans(&findings, RuleId::D004), vec![(44, 33)]);
    // The #[cfg(test)] module's unwrap is exempt.
    assert!(findings.iter().all(|f| f.line < 48));
}
