//! Fixture suite: every rule id must fire with exact spans on the
//! known-bad snippets, honor justified suppressions, and reject bare
//! ones.

use ef_simlint::{lint_source, FileCtx, Finding, RuleId};

const SIM_CTX: FileCtx = FileCtx {
    sim_critical: true,
    d002_applies: true,
    hot_path: false,
};

/// The panic-freedom context: hot-path modules are also sim-critical.
const HOT_CTX: FileCtx = FileCtx {
    sim_critical: true,
    d002_applies: true,
    hot_path: true,
};

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let src = std::fs::read_to_string(format!("{path}{name}")).expect("fixture exists");
    lint_source(&src, &SIM_CTX)
}

fn lint_fixture_hot(name: &str) -> Vec<Finding> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let src = std::fs::read_to_string(format!("{path}{name}")).expect("fixture exists");
    lint_source(&src, &HOT_CTX)
}

fn lint_real(rel: &str, ctx: &FileCtx) -> Vec<Finding> {
    let path = format!("{}/../{rel}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("workspace source readable");
    lint_source(&src, ctx)
}

fn spans(findings: &[Finding], rule: RuleId) -> Vec<(u32, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn d001_fires_with_exact_spans() {
    let findings = lint_fixture("d001.rs");
    assert_eq!(
        spans(&findings, RuleId::D001),
        vec![
            (11, 24), // s.uplinks.values()
            (18, 24), // for (_k, _v) in &s.uplinks
            (23, 10), // seen.iter()
            (29, 21), // pending.keys()
            (33, 31), // s.uplinks.drain()
        ],
    );
    // Lookups, inserts, len(): no findings; #[cfg(test)] module: exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::D001));
}

#[test]
fn d002_fires_with_exact_spans() {
    let findings = lint_fixture("d002.rs");
    assert_eq!(
        spans(&findings, RuleId::D002),
        vec![
            (2, 27),  // use std::time::{.., Instant}
            (5, 17),  // Instant::now()
            (10, 26), // std::time::SystemTime::now()
            (15, 25), // rand::thread_rng()
            (16, 24), // rand::random()
            (21, 15), // std::env::var("SEED")
        ],
    );
    // `Duration` alone never fires.
    assert!(findings.iter().all(|f| f.rule == RuleId::D002));
}

#[test]
fn d003_fires_with_exact_spans() {
    let findings = lint_fixture("d003.rs");
    assert_eq!(
        spans(&findings, RuleId::D003),
        vec![
            (4, 7),  // v.unwrap()
            (8, 7),  // v.expect(..)
            (13, 9), // panic!
        ],
    );
    // unwrap_or / unwrap_or_else and the #[cfg(test)] module are exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::D003));
}

#[test]
fn d004_fires_with_exact_spans() {
    let findings = lint_fixture("d004.rs");
    assert_eq!(
        spans(&findings, RuleId::D004),
        vec![
            (9, 24),  // .sum::<f64>() after .values()
            (13, 24), // .fold(0.0, |acc, v| acc + v)
        ],
    );
    // The same chains also fire D001 (iteration itself), including the
    // integer-sum chain, which must NOT fire D004.
    assert_eq!(spans(&findings, RuleId::D001).len(), 3);
    assert!(findings
        .iter()
        .all(|f| matches!(f.rule, RuleId::D001 | RuleId::D004)));
}

#[test]
fn justified_suppressions_are_honored() {
    let findings = lint_fixture("suppressed.rs");
    // Every finding is covered by a reasoned directive; none active.
    assert!(
        findings.iter().all(|f| f.suppressed),
        "unsuppressed: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
    // ... and the directives covered real findings of every kind used.
    let suppressed_rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert!(suppressed_rules.contains(&RuleId::D001));
    assert!(suppressed_rules.contains(&RuleId::D004));
    assert!(suppressed_rules.contains(&RuleId::D003));
}

#[test]
fn bare_suppressions_are_rejected() {
    let findings = lint_fixture("bare_suppression.rs");
    // Two directives lack a justification (bare, empty reason) -> S001;
    // the unknown-rule directive is its own class -> S003 ...
    assert_eq!(spans(&findings, RuleId::S001).len(), 2);
    assert_eq!(spans(&findings, RuleId::S003).len(), 1);
    // ... and none of them silences the underlying D001.
    assert_eq!(spans(&findings, RuleId::D001).len(), 3);
}

#[test]
fn suppressed_findings_do_not_count_as_violations() {
    let report = ef_simlint::Report {
        findings: lint_fixture("suppressed.rs"),
        files_scanned: 1,
    };
    assert!(report.violations(&[]).is_empty());
    assert_eq!(report.suppressed_count(), report.findings.len());
}

#[test]
fn s001_cannot_be_allowed() {
    let report = ef_simlint::Report {
        findings: lint_fixture("bare_suppression.rs"),
        files_scanned: 1,
    };
    // Allowing every D-rule still leaves the S-series as violations
    // (two S001, one S003).
    let allowed = [RuleId::D001, RuleId::D002, RuleId::D003, RuleId::D004];
    assert_eq!(report.violations(&allowed).len(), 3);
}

#[test]
fn json_report_is_well_formed() {
    let report = ef_simlint::Report {
        findings: lint_fixture("d003.rs"),
        files_scanned: 1,
    };
    let json = report.to_json(&[]);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"rule\":\"D003\""));
    assert!(json.contains("\"violations\":3"));
}

#[test]
fn checksum_sites_carry_no_bare_suppressions() {
    // The integrity pipeline's verify sites, in their own shape: a
    // checksum mismatch must be surfaced as data, and any suppression
    // at such a site must be justified in-source.
    let findings = lint_fixture("integrity_checks.rs");
    // Two bare directives at the verify sites → S001 ...
    let mut s001: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == RuleId::S001)
        .map(|f| f.line)
        .collect();
    s001.sort_unstable();
    assert_eq!(s001, vec![22, 29]);
    // ... and neither silences the panicking code underneath.
    assert_eq!(spans(&findings, RuleId::D003), vec![(23, 9), (30, 24)]);
    // The reasoned directive on the guarded read is honored.
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::D003 && f.suppressed && f.line == 39));
    // The checksum fold itself is integer math over a slice: no D004
    // (float accumulation) and no D001 (hash-order iteration).
    assert!(findings
        .iter()
        .all(|f| matches!(f.rule, RuleId::D003 | RuleId::S001)));
}

#[test]
fn cache_shard_shapes_fire_and_the_btree_cache_is_clean() {
    // The fingerprint cache's tempting mistakes, in its own shape:
    // hash-ordered eviction scans, wall-clock recency stamps, and a
    // float hit-rate fold in hash order.
    let findings = lint_fixture("cache_shard.rs");
    assert_eq!(spans(&findings, RuleId::D001), vec![(14, 32), (29, 15)]);
    assert_eq!(spans(&findings, RuleId::D002), vec![(24, 28)]);
    assert_eq!(spans(&findings, RuleId::D004), vec![(29, 24)]);
    // The BTreeMap shard — the real FingerprintCache's layout — and the
    // point lookups below it produce no findings at all.
    assert!(
        findings.iter().all(|f| f.line < 32),
        "the deterministic half of the fixture fired: {:?}",
        findings
            .iter()
            .filter(|f| f.line >= 32)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn the_real_fingerprint_cache_lints_clean() {
    // The production cache must exemplify what the fixture above pins:
    // BTreeMap shards, logical recency ticks, no unordered iteration —
    // now under the full panic-freedom context.
    let findings = lint_real("kvstore/src/cache.rs", &HOT_CTX);
    assert!(
        findings.iter().all(|f| f.suppressed),
        "FingerprintCache has unsuppressed findings: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn gray_failure_shapes_fire_every_rule() {
    // The gray-failure mitigation's tempting mistakes, in its own
    // shape: wall-clock RTT samples, hash-ordered hedge steering, a
    // float mean folded in hash order, and a cold-start unwrap.
    let findings = lint_fixture("gray_failure.rs");
    assert_eq!(
        spans(&findings, RuleId::D001),
        vec![(23, 17), (28, 16)] // hedge steering; mean-RTT fold
    );
    assert_eq!(spans(&findings, RuleId::D002), vec![(16, 28)]); // Instant::now
    assert_eq!(spans(&findings, RuleId::D003), vec![(33, 28)]); // cold-start unwrap
    assert_eq!(spans(&findings, RuleId::D004), vec![(28, 25)]); // float sum
                                                                // The integer Jacobson/Karels half and the #[cfg(test)] module are
                                                                // clean: every finding sits in the HashTimers block.
    assert!(findings.iter().all(|f| f.line < 36));
}

#[test]
fn the_real_rtt_estimator_lints_clean() {
    // The production gray-failure module must exemplify what the
    // fixture above pins: integer estimator state, BTreeMap-keyed
    // per-peer timers, no wall clock, no unordered iteration — under
    // the full panic-freedom context.
    let findings = lint_real("kvstore/src/gray.rs", &HOT_CTX);
    assert!(
        findings.iter().all(|f| f.suppressed),
        "gray module has unsuppressed findings: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn the_real_chunker_hot_loops_lint_clean() {
    // The gear-CDC fast path and the 8-lane SHA-256 join the
    // panic-freedom set: every index is bounded or fixed-size, every
    // wrap is spelled wrapping_*, every remaining exception justified.
    for rel in ["chunking/src/cdc.rs", "chunking/src/sha256.rs"] {
        let findings = lint_real(rel, &HOT_CTX);
        assert!(
            findings.iter().all(|f| f.suppressed),
            "{rel} has unsuppressed findings: {:?}",
            findings
                .iter()
                .filter(|f| !f.suppressed)
                .map(Finding::render)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn p001_fires_with_exact_spans() {
    let findings = lint_fixture_hot("p001.rs");
    assert_eq!(
        spans(&findings, RuleId::P001),
        vec![
            (13, 14), // self.present[word] with no bound check
            (43, 5),  // data[i] with no bound check
        ],
    );
    // Fixed arrays, literal indices, ranges, len()-covered and
    // get()-based access: nothing else fires.
    assert!(findings.iter().all(|f| f.rule == RuleId::P001));
}

#[test]
fn p002_fires_with_exact_spans() {
    let findings = lint_fixture_hot("p002.rs");
    assert_eq!(
        spans(&findings, RuleId::P002),
        vec![
            (7, 21),  // a + b
            (8, 9),   // acc += b
            (9, 15),  // acc * b
            (10, 9),  // acc *= b
            (11, 21), // a << b
            (12, 9),  // acc += xs.len() as u64
        ],
    );
    // Literal-operand forms and wrapping_*/saturating_* methods are
    // exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::P002));
}

#[test]
fn p003_escalates_panics_on_the_hot_path() {
    let findings = lint_fixture_hot("p003.rs");
    assert_eq!(
        spans(&findings, RuleId::P003),
        vec![(6, 7), (10, 7), (15, 9)],
    );
    // The same sites report as P003, not D003, and the #[cfg(test)]
    // module stays exempt.
    assert!(findings.iter().all(|f| f.rule == RuleId::P003));
}

#[test]
fn e001_fires_only_on_wildcards_over_fault_patterns() {
    let findings = lint_fixture("e001.rs");
    assert_eq!(spans(&findings, RuleId::E001), vec![(18, 9)]);
    // Exhaustive fault matches, non-fault enums, guarded wildcards,
    // and fault values appearing only in arm *bodies* are all clean.
    assert!(findings.iter().all(|f| f.rule == RuleId::E001));
}

#[test]
fn e001_catches_the_wildcard_when_the_enum_grows() {
    // Phantom-variant drill: the enum has a variant the wildcard
    // handler was never written for; E001 reports exactly that arm.
    let findings = lint_fixture("e001_phantom.rs");
    assert_eq!(spans(&findings, RuleId::E001), vec![(17, 9)]);
    assert_eq!(findings.len(), 1);
}

#[test]
fn e001_polices_the_byzantine_fault_family() {
    // The trust layer's attack enum is policed like any fault enum:
    // the phantom `HintFlood` drill exposes the dispatcher's wildcard,
    // while the revisited handler and the guarded wildcard are clean.
    let findings = lint_fixture("e001_byzantine.rs");
    assert_eq!(spans(&findings, RuleId::E001), vec![(19, 9)]);
    assert_eq!(findings.len(), 1);
}

#[test]
fn e001_polices_the_spool_enums() {
    // The disaster-tolerance spool enums are policed like any fault
    // enum: the phantom class exposes the planner's wildcard, while the
    // exhaustive destination router is clean.
    let findings = lint_fixture("e001_spool.rs");
    assert_eq!(spans(&findings, RuleId::E001), vec![(21, 9)]);
    assert_eq!(findings.len(), 1);
}

#[test]
fn s002_reports_stale_suppressions() {
    let findings = lint_fixture("s002.rs");
    // Stale directive, blank-line-detached directive, wrong-rule
    // directive — each reported at its own position.
    assert_eq!(
        spans(&findings, RuleId::S002),
        vec![(11, 5), (16, 5), (22, 5)],
    );
    // The live directive suppresses its D003 and is not stale.
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::D003 && f.suppressed && f.line == 7));
    // The wrong-rule directive leaves its D001 unsuppressed.
    assert_eq!(spans(&findings, RuleId::D001), vec![(23, 7)]);
}

#[test]
fn s003_reports_nonexistent_rules() {
    let findings = lint_fixture("s003.rs");
    assert_eq!(spans(&findings, RuleId::S003), vec![(5, 5), (10, 5)]);
    // Neither directive silences the code below it.
    assert_eq!(spans(&findings, RuleId::D003), vec![(6, 7)]);
    assert_eq!(spans(&findings, RuleId::D001), vec![(11, 7)]);
}

#[test]
fn directive_stacks_resolve_to_the_statement_below() {
    // Regression for the S001 stack bug: a stack of directives binds to
    // the first code line below it, and a plain comment between a
    // directive and its code does not break the chain.
    let findings = lint_fixture("s001_stack.rs");
    assert!(
        findings.iter().all(|f| f.suppressed),
        "unsuppressed: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
    // No directive in the stack is reported stale or bare.
    assert!(!findings.iter().any(|f| f.rule.is_suppression_hygiene()));
    // Both rules were actually exercised.
    assert!(findings.iter().any(|f| f.rule == RuleId::D001));
    assert!(findings.iter().any(|f| f.rule == RuleId::D004));
}

#[test]
fn workload_gen_shapes_fire_every_rule() {
    // The workload generators' tempting mistakes, in their own shape:
    // wall-clock corpus seeding, hash-ordered version emission, a float
    // edit-rate fold in hash order, and an unwrap on the clock read.
    let findings = lint_fixture("workload_gen.rs");
    assert_eq!(spans(&findings, RuleId::D001), vec![(24, 32), (33, 22)]);
    assert_eq!(spans(&findings, RuleId::D002), vec![(16, 26)]);
    assert_eq!(spans(&findings, RuleId::D003), vec![(17, 48)]);
    assert_eq!(spans(&findings, RuleId::D004), vec![(33, 31)]);
    // The BTreeMap half — the real generators' shape — and the
    // #[cfg(test)] module are clean.
    assert!(findings.iter().all(|f| f.line < 36));
}

#[test]
fn the_real_workload_generators_lint_clean() {
    // The production generators must exemplify what the fixture above
    // pins: every byte from a labeled DetRng substream, ordered
    // containers only, no clock, no panic outside #[cfg(test)].
    let findings = lint_real("datagen/src/workload.rs", &SIM_CTX);
    assert!(
        findings.iter().all(|f| f.suppressed),
        "workload module has unsuppressed findings: {:?}",
        findings
            .iter()
            .filter(|f| !f.suppressed)
            .map(Finding::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn wal_recovery_shapes_fire_every_rule() {
    // The crash-recovery subsystem's tempting mistakes, in its own
    // shape: hash-ordered WAL replay, wall-clock snapshot stamps,
    // panicking record decode, hash-ordered latency accumulation.
    let findings = lint_fixture("wal_recovery.rs");
    assert_eq!(spans(&findings, RuleId::D001), vec![(23, 31), (44, 24)]);
    assert_eq!(spans(&findings, RuleId::D002), vec![(32, 20)]);
    assert_eq!(spans(&findings, RuleId::D003), vec![(42, 41)]);
    assert_eq!(spans(&findings, RuleId::D004), vec![(44, 33)]);
    // The #[cfg(test)] module's unwrap is exempt.
    assert!(findings.iter().all(|f| f.line < 48));
}
