//! Baseline ratchet: per-rule finding counts committed as
//! `simlint-baseline.json`, diffed against every run. A count that
//! rises fails CI; a count that falls fails too until the baseline is
//! shrunk to match — so the recorded debt can only burn down.
//!
//! The file is a flat JSON object (`{"D001": 0, ...}`), parsed with a
//! minimal hand-rolled reader to keep the linter dependency-free.

use crate::RuleId;
use std::collections::BTreeMap;
use std::path::Path;

/// Per-rule blessed counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<RuleId, u64>,
}

/// One row of the ratchet comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRow {
    pub rule: RuleId,
    pub baseline: u64,
    pub current: u64,
}

impl DeltaRow {
    /// Findings not covered by the baseline (a CI failure).
    pub fn regressed(&self) -> bool {
        self.current > self.baseline
    }

    /// Baseline blesses more findings than exist (must be shrunk).
    pub fn stale(&self) -> bool {
        self.current < self.baseline
    }
}

impl Baseline {
    /// Builds a baseline from a report's current per-rule counts.
    pub fn from_counts(counts: &BTreeMap<RuleId, u64>) -> Baseline {
        Baseline {
            counts: counts.clone(),
        }
    }

    /// Blessed count for one rule (unknown rules bless nothing).
    pub fn count(&self, rule: RuleId) -> u64 {
        self.counts.get(&rule).copied().unwrap_or(0)
    }

    /// Loads and parses a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the flat `{"RULE": count, ...}` object. Unknown keys are
    /// an error: a stale rule name in the baseline must not silently
    /// bless nothing.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut chars = text.chars().peekable();
        skip_ws(&mut chars);
        if chars.next() != Some('{') {
            return Err("baseline must be a JSON object".to_string());
        }
        loop {
            skip_ws(&mut chars);
            match chars.peek() {
                Some('}') => {
                    chars.next();
                    break;
                }
                Some('"') => {}
                _ => return Err("expected `\"rule\"` key or `}`".to_string()),
            }
            chars.next(); // opening quote
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
                key.push(c);
            }
            let rule = RuleId::parse(&key).ok_or_else(|| format!("unknown rule id `{key}`"))?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("missing `:` after `{key}`"));
            }
            skip_ws(&mut chars);
            let mut digits = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                digits.push(chars.next().expect("peeked digit"));
            }
            let n: u64 = digits
                .parse()
                .map_err(|_| format!("invalid count for `{key}`"))?;
            if counts.insert(rule, n).is_some() {
                return Err(format!("duplicate rule `{key}`"));
            }
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".to_string()),
            }
        }
        Ok(Baseline { counts })
    }

    /// Serializes in the committed format: one rule per line, sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let rows: Vec<String> = RuleId::ALL
            .iter()
            .map(|r| format!("  \"{r}\": {}", self.count(*r)))
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n}\n");
        out
    }

    /// Per-rule comparison against current counts, every rule listed.
    pub fn delta(&self, counts: &BTreeMap<RuleId, u64>) -> Vec<DeltaRow> {
        RuleId::ALL
            .iter()
            .map(|r| DeltaRow {
                rule: *r,
                baseline: self.count(*r),
                current: counts.get(r).copied().unwrap_or(0),
            })
            .collect()
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let mut counts = BTreeMap::new();
        counts.insert(RuleId::D001, 3);
        counts.insert(RuleId::P002, 1);
        let b = Baseline::from_counts(&counts);
        let parsed = Baseline::parse(&b.to_json()).expect("parses");
        assert_eq!(parsed.count(RuleId::D001), 3);
        assert_eq!(parsed.count(RuleId::P002), 1);
        assert_eq!(parsed.count(RuleId::S002), 0);
    }

    #[test]
    fn rejects_unknown_rules_and_garbage() {
        assert!(Baseline::parse("{\"D999\": 0}").is_err());
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"D001\": 1, \"D001\": 2}").is_err());
    }

    #[test]
    fn delta_classifies_rows() {
        let base = Baseline::parse("{\"D003\": 2}").expect("parses");
        let mut now = BTreeMap::new();
        now.insert(RuleId::D003, 3);
        now.insert(RuleId::P001, 1);
        let delta = base.delta(&now);
        let d003 = delta.iter().find(|r| r.rule == RuleId::D003).unwrap();
        assert!(d003.regressed() && !d003.stale());
        let p001 = delta.iter().find(|r| r.rule == RuleId::P001).unwrap();
        assert!(p001.regressed());
        let d001 = delta.iter().find(|r| r.rule == RuleId::D001).unwrap();
        assert!(!d001.regressed() && !d001.stale());
    }
}
