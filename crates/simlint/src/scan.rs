//! Workspace file discovery and per-file rule scoping.

use crate::{FileCtx, HOT_PATH_FILES, SIM_CRITICAL_CRATES};
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target", ".git", ".scratch", "tests", "benches", "examples", "fixtures",
];

/// Collects the `.rs` library sources of the workspace rooted at
/// `root`: `src/` of the root package and of every `crates/*` member.
/// Test directories, fixtures, and build output are skipped — rules
/// only police library code.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if !SKIP_DIRS.contains(&name) {
                walk(&path, files)?;
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Decides which rules apply to `rel` (a `/`-separated workspace-relative
/// path like `crates/netsim/src/network.rs`).
pub fn context_for(rel: &str) -> FileCtx {
    let sim_critical = SIM_CRITICAL_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    let d002_applies = !rel.starts_with("crates/bench/");
    let hot_path = HOT_PATH_FILES.contains(&rel);
    FileCtx {
        sim_critical,
        d002_applies,
        hot_path,
    }
}

/// Workspace-relative display path with `/` separators.
pub fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_scoping() {
        let sim = context_for("crates/netsim/src/network.rs");
        assert!(sim.sim_critical && sim.d002_applies && !sim.hot_path);
        let bench = context_for("crates/bench/src/lib.rs");
        assert!(!bench.sim_critical && !bench.d002_applies);
        // The chunking crate is sim-critical, and its CDC/SHA modules
        // sit on the panic-freedom hot-path list.
        let cdc = context_for("crates/chunking/src/cdc.rs");
        assert!(cdc.sim_critical && cdc.d002_applies && cdc.hot_path);
        let index = context_for("crates/chunking/src/index.rs");
        assert!(index.sim_critical && !index.hot_path);
        let cache = context_for("crates/kvstore/src/cache.rs");
        assert!(cache.hot_path);
        let root = context_for("src/lib.rs");
        assert!(!root.sim_critical && root.d002_applies);
    }
}
