//! Rule engine: parser-backed determinism/soundness checks.
//!
//! The D-series rules work on the token stream directly — the patterns
//! they police (unordered-collection iteration, banned wall-clock
//! calls, panicking combinators) are locally recognizable. The P/E/S
//! families lean on the structural layer in [`crate::parse`]: match
//! arms split into pattern vs. body, function extents for bound-check
//! coverage, fixed-size-array bindings, and explicit directive-stack
//! resolution. Everything stays dependency-free so the linter runs in
//! minimal build environments. The fixture suite in `tests/` pins the
//! recognized shapes; anything subtler can be silenced in-source with a
//! justified `// simlint::allow(D00x): <reason>` — which rule S002
//! reports as stale the moment it stops covering a finding.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parse::{
    adjacent, code_lines, comment_lines, enclosing_fn, fixed_array_names, fn_extents, is_ident,
    is_num_lit, is_punct, match_expressions, matching, matching_angle, test_code_mask,
};
use crate::{FileCtx, Finding, RuleId, FAULT_ENUMS};
use std::collections::BTreeSet;

/// Methods whose call on a `HashMap`/`HashSet` observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Constructors that mark a binding as an unordered collection.
const CTORS: &[&str] = &["new", "with_capacity", "default", "from_iter", "from"];

/// Keywords that can directly precede `[` or an operand position
/// without making the previous token an expression operand.
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "else", "if", "while", "match", "for", "loop", "move",
    "break", "continue", "box", "do", "yield", "dyn", "impl", "where", "use", "as",
];

/// Methods that count as a bound check on the indexed base (P001).
const BOUND_METHODS: &[&str] = &["len", "get", "get_mut", "is_empty"];

/// Lints one source file. `ctx` decides which rules apply; findings are
/// returned with suppressions already resolved (`suppressed == true`
/// findings are informational).
pub fn lint_source(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let (toks, comments) = lex(src);
    let excluded = test_code_mask(&toks);

    let mut findings = Vec::new();
    if ctx.sim_critical || ctx.hot_path {
        let tracked = unordered_bindings(&toks, &excluded);
        check_d001_d004(&toks, &excluded, &tracked, &mut findings);
        // On the hot-path list a panic site is escalated to P003; the
        // shape detected is identical.
        let panic_rule = if ctx.hot_path {
            RuleId::P003
        } else {
            RuleId::D003
        };
        check_panics(&toks, &excluded, panic_rule, &mut findings);
        check_e001(&toks, &excluded, &mut findings);
    }
    if ctx.hot_path {
        check_p001(&toks, &excluded, &mut findings);
        check_p002(&toks, &excluded, &mut findings);
    }
    if ctx.d002_applies {
        check_d002(&toks, &excluded, &mut findings);
    }

    let mut suppressions = parse_suppressions(&comments, &mut findings);
    resolve_suppressions(
        &mut findings,
        &mut suppressions,
        &code_lines(&toks),
        &comment_lines(&comments),
    );
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings.dedup_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// One parsed `// simlint::allow(...)` directive.
struct Suppression {
    rules: Vec<RuleId>,
    line: u32,
    col: u32,
    /// Set when the directive silenced at least one finding; a directive
    /// that stays unused is itself reported (S002).
    used: bool,
}

/// Collects names bound to `HashMap`/`HashSet` in non-test code: type
/// ascriptions (`name: HashMap<..>` in fields, lets, params) and
/// constructor bindings (`let name = HashMap::new()`).
fn unordered_bindings(toks: &[Tok], excluded: &[bool]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk back over a path prefix (`std::collections::`) and
        // reference sigils to find `name :` or `let name =`.
        let mut j = i;
        while j >= 3 && is_punct(toks, j - 1, ":") && is_punct(toks, j - 2, ":") {
            j -= 3; // `seg ::`
        }
        while j >= 1 && (is_punct(toks, j - 1, "&") || is_ident(toks, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2 && is_punct(toks, j - 1, ":") && toks[j - 2].kind == TokKind::Ident {
            tracked.insert(toks[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::ctor(..)`
        if j >= 2 && is_punct(toks, j - 1, "=") && toks[j - 2].kind == TokKind::Ident {
            let is_ctor = is_punct(toks, i + 1, ":")
                && is_punct(toks, i + 2, ":")
                && toks
                    .get(i + 3)
                    .is_some_and(|t| CTORS.contains(&t.text.as_str()));
            let turbofish_ctor = is_punct(toks, i + 1, ":")
                && is_punct(toks, i + 2, ":")
                && is_punct(toks, i + 3, "<");
            if is_ctor || turbofish_ctor {
                tracked.insert(toks[j - 2].text.clone());
            }
        }
    }
    tracked
}

/// D001 (+ D004 riding the same chains): iteration over unordered
/// collections, and floating-point accumulation over those iterators.
fn check_d001_d004(
    toks: &[Tok],
    excluded: &[bool],
    tracked: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        let direct_type = t.text == "HashMap" || t.text == "HashSet";
        if !direct_type && !tracked.contains(&t.text) {
            continue;
        }
        // Don't re-flag the declaration site itself.
        if is_punct(toks, i + 1, ":") && !is_punct(toks, i + 2, ":") {
            continue;
        }
        scan_chain(toks, i, &t.text, findings);
        check_for_loop(toks, i, &t.text, findings);
    }
}

/// Walks a method chain rooted at token `i` and reports order-observing
/// iteration (D001) and float accumulation after it (D004).
fn scan_chain(toks: &[Tok], root: usize, name: &str, findings: &mut Vec<Finding>) {
    let mut j = root + 1;
    // Skip a path/ctor prefix: `HashMap::new()`, `name` alone, etc.
    let mut saw_iter = false;
    loop {
        if is_punct(toks, j, ":") && is_punct(toks, j + 1, ":") {
            // `::segment` or `::<T>` turbofish
            j += 2;
            if is_punct(toks, j, "<") {
                j = match matching_angle(toks, j) {
                    Some(e) => e + 1,
                    None => return,
                };
            } else {
                j += 1;
            }
            continue;
        }
        if is_punct(toks, j, "(") {
            j = match matching(toks, j, "(", ")") {
                Some(e) => e + 1,
                None => return,
            };
            continue;
        }
        if !is_punct(toks, j, ".") {
            return;
        }
        // `.method`
        let m = j + 1;
        let Some(mt) = toks.get(m) else { return };
        if mt.kind != TokKind::Ident {
            return;
        }
        let method = mt.text.as_str();
        let mut k = m + 1;
        let mut turbofish_f64 = false;
        if is_punct(toks, k, ":") && is_punct(toks, k + 1, ":") && is_punct(toks, k + 2, "<") {
            let end = match matching_angle(toks, k + 2) {
                Some(e) => e,
                None => return,
            };
            turbofish_f64 = toks[k + 2..end].iter().any(|t| t.text == "f64");
            k = end + 1;
        }
        let args_end = if is_punct(toks, k, "(") {
            match matching(toks, k, "(", ")") {
                Some(e) => e,
                None => return,
            }
        } else {
            // Field access, not a call: stop the chain.
            return;
        };

        if !saw_iter && ITER_METHODS.contains(&method) {
            saw_iter = true;
            findings.push(Finding::new(
                RuleId::D001,
                mt.line,
                mt.col,
                format!(
                    "iteration order of `{name}` (HashMap/HashSet) is unordered; \
                     use BTreeMap/BTreeSet or sort before iterating"
                ),
            ));
        } else if saw_iter {
            let float_fold = method == "fold"
                && toks[k..=args_end]
                    .iter()
                    .any(|t| t.kind == TokKind::Punct && t.text == "+");
            if (method == "sum" && turbofish_f64) || float_fold {
                findings.push(Finding::new(
                    RuleId::D004,
                    mt.line,
                    mt.col,
                    format!(
                        "floating-point accumulation over unordered iteration of `{name}`; \
                         rounding makes the result order-dependent"
                    ),
                ));
            }
        }
        j = args_end + 1;
    }
}

/// `for x in name` / `for x in &name` — implicit IntoIterator over an
/// unordered collection. Chained forms (`for x in name.keys()`) are
/// reported by `scan_chain` instead.
fn check_for_loop(toks: &[Tok], i: usize, name: &str, findings: &mut Vec<Finding>) {
    // The next token must end the iterated expression (loop body brace)
    // for this to be direct iteration of the collection itself.
    if !is_punct(toks, i + 1, "{") {
        return;
    }
    // Walk back over the receiver path (`&`, `*`, `mut`, idents, `.`,
    // `::`) to find the `in` keyword.
    let mut j = i;
    while j >= 1 {
        let prev = &toks[j - 1];
        let passes = (prev.kind == TokKind::Punct
            && (prev.text == "&" || prev.text == "." || prev.text == "*" || prev.text == ":"))
            || (prev.kind == TokKind::Ident && prev.text != "in");
        if passes {
            j -= 1;
        } else {
            break;
        }
    }
    if j >= 1 && is_ident(toks, j - 1, "in") {
        findings.push(Finding::new(
            RuleId::D001,
            toks[i].line,
            toks[i].col,
            format!(
                "iteration order of `{name}` (HashMap/HashSet) is unordered; \
                 use BTreeMap/BTreeSet or sort before iterating"
            ),
        ));
    }
}

/// D002: wall-clock and ambient-entropy APIs.
fn check_d002(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                let in_std_time_path = path_prefix(toks, i, "time");
                let in_use_std_time = in_use_of(toks, i, "time");
                let calls_now = is_punct(toks, i + 1, ":")
                    && is_punct(toks, i + 2, ":")
                    && is_ident(toks, i + 3, "now");
                if in_std_time_path || in_use_std_time || calls_now {
                    findings.push(Finding::new(
                        RuleId::D002,
                        t.line,
                        t.col,
                        format!(
                            "`std::time::{}` reads the wall clock; simulation time must come \
                             from the event loop (SimTime)",
                            t.text
                        ),
                    ));
                }
            }
            "thread_rng" => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`rand::thread_rng` draws OS entropy; all randomness must flow from a \
                     seeded DetRng"
                        .to_string(),
                ));
            }
            "random" if path_prefix(toks, i, "rand") => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`rand::random` draws OS entropy; all randomness must flow from a \
                     seeded DetRng"
                        .to_string(),
                ));
            }
            "var" | "var_os" if path_prefix(toks, i, "env") => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`std::env::var` makes behaviour depend on ambient environment state; \
                     seeds and configuration must be explicit parameters"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Is token `i` immediately preceded by `<segment>::`? (`::` lexes as two
/// single-char puncts, so the segment ident sits at `i - 3`.)
fn path_prefix(toks: &[Tok], i: usize, segment: &str) -> bool {
    i >= 3
        && is_punct(toks, i - 1, ":")
        && is_punct(toks, i - 2, ":")
        && is_ident(toks, i - 3, segment)
}

/// Is token `i` inside a `use std::<module>::{...}` item naming `module`?
fn in_use_of(toks: &[Tok], i: usize, module: &str) -> bool {
    // Walk back to the start of the statement and check its head.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct && (t.text == ";" || t.text == "}" || t.text == "{") {
            // `{` may open a use-group: `use std::time::{..., Instant}`.
            if t.text == "{" && j >= 3 && is_punct(toks, j - 2, ":") && is_punct(toks, j - 3, ":") {
                j -= 1;
                continue;
            }
            break;
        }
        j -= 1;
    }
    let head = &toks[j..i];
    let mut saw_use = false;
    let mut saw_module = false;
    for t in head {
        if t.kind == TokKind::Ident {
            if t.text == "use" {
                saw_use = true;
            }
            if t.text == module {
                saw_module = true;
            }
        }
    }
    saw_use && saw_module
}

/// D003/P003: panicking combinators in non-test library code. The same
/// shape reports as P003 in hot-path modules, D003 elsewhere.
fn check_panics(toks: &[Tok], excluded: &[bool], rule: RuleId, findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1 && is_punct(toks, i - 1, ".") && is_punct(toks, i + 1, "(") =>
            {
                findings.push(Finding::new(
                    rule,
                    t.line,
                    t.col,
                    format!(
                        "`.{}()` can panic in library code; surface the failure as \
                         Result/OpResult instead",
                        t.text
                    ),
                ));
            }
            "panic" if is_punct(toks, i + 1, "!") => {
                findings.push(Finding::new(
                    rule,
                    t.line,
                    t.col,
                    "`panic!` aborts the simulation; surface the failure as \
                     Result/OpResult instead"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// P001: postfix indexing `base[expr]` in a hot-path module with no
/// covering bound check in the enclosing function. Exempt: fixed-size
/// arrays (bounded by construction), lone integer-literal indices, and
/// range slices `base[a..b]`. A bound check is any `base.len()` /
/// `base.get(..)` / `base.is_empty()` mention in the same function.
fn check_p001(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    let fixed = fixed_array_names(toks);
    let fns = fn_extents(toks);
    for i in 1..toks.len() {
        if excluded[i] || !is_punct(toks, i, "[") {
            continue;
        }
        let base = &toks[i - 1];
        if base.kind != TokKind::Ident || NON_OPERAND_KEYWORDS.contains(&base.text.as_str()) {
            continue;
        }
        let Some(close) = matching(toks, i, "[", "]") else {
            continue;
        };
        if close == i + 1 {
            continue; // `[]` — a type position, not an index
        }
        // Range slice: `..` anywhere inside the index group.
        let is_range = (i + 1..close.saturating_sub(1)).any(|k| {
            is_punct(toks, k, ".") && is_punct(toks, k + 1, ".") && adjacent(toks, k, k + 1)
        });
        if is_range {
            continue;
        }
        // Lone integer literal index: bounded by inspection.
        if close == i + 2 && is_num_lit(toks, i + 1) {
            continue;
        }
        if fixed.contains(&base.text) {
            continue;
        }
        let covered = enclosing_fn(&fns, i).is_some_and(|(fs, fe)| {
            (fs..=fe).any(|k| {
                is_ident(toks, k, &base.text)
                    && is_punct(toks, k + 1, ".")
                    && toks
                        .get(k + 2)
                        .is_some_and(|t| BOUND_METHODS.contains(&t.text.as_str()))
            })
        });
        if covered {
            continue;
        }
        findings.push(Finding::new(
            RuleId::P001,
            base.line,
            base.col,
            format!(
                "indexing `{}[..]` can panic on a hot path; bound it with \
                 `.len()`/`.get()` in this function or justify with an allow",
                base.text
            ),
        ));
    }
}

/// P002: unchecked `+`/`*`/`<<` (and `+=`/`*=`/`<<=`) between
/// non-literal integer operands in a hot-path module. An operand that
/// is a numeric literal makes the growth rate inspectable (`i + 1`,
/// `x << 2`, `n * 8`), so those are exempt; everything else must be
/// `wrapping_*`/`checked_*`/`saturating_*` or carry a justified allow.
fn check_p002(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if excluded[i] || toks[i].kind != TokKind::Punct {
            i += 1;
            continue;
        }
        match toks[i].text.as_str() {
            op @ ("+" | "*") => {
                // Compound assignment `+=` / `*=`.
                if is_punct(toks, i + 1, "=") && adjacent(toks, i, i + 1) {
                    if !is_num_lit(toks, i + 2) {
                        findings.push(p002_finding(&toks[i], &format!("{op}=")));
                    }
                    i += 2;
                    continue;
                }
                // Binary operator: previous token must be an operand.
                if i >= 1 && is_operand_end(&toks[i - 1]) {
                    let lit_neighbor = is_num_lit(toks, i - 1) || is_num_lit(toks, i + 1);
                    if !lit_neighbor {
                        findings.push(p002_finding(&toks[i], op));
                    }
                }
            }
            "<" if is_punct(toks, i + 1, "<") && adjacent(toks, i, i + 1) => {
                // `<<` or `<<=`; the shifted-out bits silently vanish
                // unless the amount is inspectable.
                let rhs = if is_punct(toks, i + 2, "=") && adjacent(toks, i + 1, i + 2) {
                    i + 3
                } else {
                    i + 2
                };
                let operand_before = i >= 1 && is_operand_end(&toks[i - 1]);
                if operand_before && !is_num_lit(toks, rhs) {
                    let op = if rhs == i + 3 { "<<=" } else { "<<" };
                    findings.push(p002_finding(&toks[i], op));
                }
                i = rhs;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Can `t` end an expression operand (making a following `+`/`*`
/// binary rather than unary/deref)?
fn is_operand_end(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_OPERAND_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Lit => true,
        TokKind::Punct => t.text == ")" || t.text == "]",
    }
}

fn p002_finding(t: &Tok, op: &str) -> Finding {
    Finding::new(
        RuleId::P002,
        t.line,
        t.col,
        format!(
            "unchecked `{op}` on a hot path can overflow; make the policy \
             explicit with `wrapping_*`/`checked_*`/`saturating_*`"
        ),
    )
}

/// E001: a `match` whose arm *patterns* name one of the fault/liveness
/// enums must not carry a bare `_` wildcard arm — adding a fault
/// variant has to force every handler site to be revisited. Guarded
/// wildcards (`_ if cond`) and catch-all bindings are out of scope:
/// only the unconditional `_` arm swallows new variants silently.
fn check_e001(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    for mx in match_expressions(toks) {
        if excluded[mx.kw] {
            continue;
        }
        let fault_enum = mx.arms.iter().find_map(|arm| {
            (arm.pat.0..arm.pat.1).find_map(|k| {
                let t = &toks[k];
                if t.kind == TokKind::Ident
                    && FAULT_ENUMS.contains(&t.text.as_str())
                    && is_punct(toks, k + 1, ":")
                    && is_punct(toks, k + 2, ":")
                {
                    Some(t.text.clone())
                } else {
                    None
                }
            })
        });
        let Some(enum_name) = fault_enum else {
            continue;
        };
        for arm in &mx.arms {
            // `_` lexes as an identifier token.
            let pat = &toks[arm.pat.0..arm.pat.1];
            if pat.len() == 1 && pat[0].text == "_" {
                findings.push(Finding::new(
                    RuleId::E001,
                    pat[0].line,
                    pat[0].col,
                    format!(
                        "wildcard `_` arm in a match over fault enum `{enum_name}`; \
                         enumerate the variants so a new fault type cannot be \
                         silently swallowed"
                    ),
                ));
            }
        }
    }
}

/// Parses `// simlint::allow(D00x[, D00y]): reason` directives. A
/// directive with no reason (or an empty one) is itself a violation
/// (S001); one naming a rule that does not exist is S003 — every
/// exception must be justified and must name a real rule.
fn parse_suppressions(comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Only a plain `//` comment whose first word is the directive
        // counts; doc comments (`///`, `//!`) merely *talk about* the
        // syntax and must not parse as directives.
        let Some(body) = c.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(after) = body.trim_start().strip_prefix("simlint::allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "malformed simlint::allow directive (missing `)`)".to_string(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut unknown = None;
        for part in after[..close].split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => unknown = Some(part.trim().to_string()),
            }
        }
        if let Some(bad) = unknown {
            findings.push(Finding::new(
                RuleId::S003,
                c.line,
                c.col,
                format!("simlint::allow names a rule that does not exist: `{bad}`"),
            ));
            continue;
        }
        if rules.is_empty() {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "simlint::allow names no rule".to_string(),
            ));
            continue;
        }
        if rules.iter().any(RuleId::is_suppression_hygiene) {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "S-series rules police the suppression mechanism itself and \
                 cannot be allowed"
                    .to_string(),
            ));
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "bare simlint::allow (no justification); write \
                 `// simlint::allow(D00x): <reason>`"
                    .to_string(),
            ));
            continue;
        }
        out.push(Suppression {
            rules,
            line: c.line,
            col: c.col,
            used: false,
        });
    }
    out
}

/// Lines a directive covers: its own line when code shares it (a
/// trailing directive binds tightly); otherwise the next code line
/// reachable through comment-only lines. Stacked directives are
/// comment-only lines themselves, so a whole stack resolves to the
/// statement below it — never to a sibling directive, which is the
/// distinction the old line-walk got wrong.
fn covered_lines(s: &Suppression, code: &BTreeSet<u32>, comments: &BTreeSet<u32>) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    if code.contains(&s.line) {
        out.insert(s.line);
        return out;
    }
    let mut l = s.line + 1;
    loop {
        if code.contains(&l) {
            out.insert(l);
            break;
        }
        if comments.contains(&l) {
            l += 1; // look through stacked directives / comment lines
            continue;
        }
        break; // blank line: the directive is detached
    }
    out
}

/// Marks findings covered by a justified directive as suppressed, then
/// reports every directive that silenced nothing as stale (S002).
/// S-series findings are never suppressed: hygiene problems must
/// surface even under a (mis-)matching allow.
fn resolve_suppressions(
    findings: &mut Vec<Finding>,
    suppressions: &mut [Suppression],
    code: &BTreeSet<u32>,
    comments: &BTreeSet<u32>,
) {
    for s in suppressions.iter_mut() {
        let lines = covered_lines(s, code, comments);
        for f in findings.iter_mut() {
            if f.rule.is_suppression_hygiene() {
                continue;
            }
            if s.rules.contains(&f.rule) && lines.contains(&f.line) {
                f.suppressed = true;
                s.used = true;
            }
        }
    }
    for s in suppressions.iter().filter(|s| !s.used) {
        let rules = s
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding::new(
            RuleId::S002,
            s.line,
            s.col,
            format!(
                "stale simlint::allow({rules}): the covered lines produce no \
                 such finding; delete the directive"
            ),
        ));
    }
}
