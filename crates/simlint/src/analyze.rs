//! Rule engine: token-level determinism/soundness checks.
//!
//! The rules deliberately work on the token stream rather than a full
//! AST: the patterns they police (unordered-collection iteration, banned
//! wall-clock calls, panicking combinators) are locally recognizable,
//! and a token engine keeps the linter dependency-free so it can run in
//! minimal build environments. The fixture suite in `tests/` pins the
//! recognized shapes; anything subtler can be silenced in-source with a
//! justified `// simlint::allow(D00x): <reason>`.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::{FileCtx, Finding, RuleId};
use std::collections::BTreeSet;

/// Methods whose call on a `HashMap`/`HashSet` observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Constructors that mark a binding as an unordered collection.
const CTORS: &[&str] = &["new", "with_capacity", "default", "from_iter", "from"];

/// Lints one source file. `ctx` decides which rules apply; findings are
/// returned with suppressions already resolved (`suppressed == true`
/// findings are informational).
pub fn lint_source(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let (toks, comments) = lex(src);
    let excluded = test_code_mask(&toks);

    let mut findings = Vec::new();
    if ctx.sim_critical {
        let tracked = unordered_bindings(&toks, &excluded);
        check_d001_d004(&toks, &excluded, &tracked, &mut findings);
        check_d003(&toks, &excluded, &mut findings);
    }
    if ctx.d002_applies {
        check_d002(&toks, &excluded, &mut findings);
    }

    let suppressions = parse_suppressions(&comments, &mut findings);
    resolve_suppressions(&mut findings, &suppressions);
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings.dedup_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// One parsed `// simlint::allow(...)` directive.
struct Suppression {
    rules: Vec<RuleId>,
    line: u32,
}

/// Marks tokens that belong to `#[cfg(test)]`-gated items (or items
/// under `#[test]`), which every rule skips: test code is allowed to
/// panic and to use unordered collections for assertions.
fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(toks, i, "#") {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching(toks, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        if !attr_is_test_gate(&toks[i + 1..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then the gated item itself.
        let mut j = attr_end + 1;
        while is_punct(toks, j, "#") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let item_end = item_extent(toks, j);
        for m in mask.iter_mut().take(item_end + 1).skip(i) {
            *m = true;
        }
        i = item_end + 1;
    }
    mask
}

/// `#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[test]` — but not
/// `#[cfg(not(test))]`, which gates *non*-test code.
fn attr_is_test_gate(attr: &[Tok]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    let mut has_cfg_or_bare = false;
    for (k, t) in attr.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "test" => {
                has_test = true;
                // `#[test]` bare form: first token inside the brackets.
                if k == 1 {
                    has_cfg_or_bare = true;
                }
            }
            "cfg" => has_cfg_or_bare = true,
            "not" => has_not = true,
            _ => {}
        }
    }
    has_test && has_cfg_or_bare && !has_not
}

/// Extent of the item starting at `start`: through the matching `}` of
/// its first block, or through a terminating `;`.
fn item_extent(toks: &[Tok], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth_paren += 1,
            ")" | "]" => depth_paren -= 1,
            "{" if depth_paren == 0 => {
                return matching(toks, j, "{", "}").unwrap_or(toks.len() - 1);
            }
            ";" if depth_paren == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn is_punct(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn is_ident(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// Index of the delimiter matching `open` at `start` (which must hold
/// `open`), or `None`.
fn matching(toks: &[Tok], start: usize, open: &str, close: &str) -> Option<usize> {
    if !is_punct(toks, start, open) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Collects names bound to `HashMap`/`HashSet` in non-test code: type
/// ascriptions (`name: HashMap<..>` in fields, lets, params) and
/// constructor bindings (`let name = HashMap::new()`).
fn unordered_bindings(toks: &[Tok], excluded: &[bool]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk back over a path prefix (`std::collections::`) and
        // reference sigils to find `name :` or `let name =`.
        let mut j = i;
        while j >= 3 && is_punct(toks, j - 1, ":") && is_punct(toks, j - 2, ":") {
            j -= 3; // `seg ::`
        }
        while j >= 1 && (is_punct(toks, j - 1, "&") || is_ident(toks, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2 && is_punct(toks, j - 1, ":") && toks[j - 2].kind == TokKind::Ident {
            tracked.insert(toks[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::ctor(..)`
        if j >= 2 && is_punct(toks, j - 1, "=") && toks[j - 2].kind == TokKind::Ident {
            let is_ctor = is_punct(toks, i + 1, ":")
                && is_punct(toks, i + 2, ":")
                && toks
                    .get(i + 3)
                    .is_some_and(|t| CTORS.contains(&t.text.as_str()));
            let turbofish_ctor = is_punct(toks, i + 1, ":")
                && is_punct(toks, i + 2, ":")
                && is_punct(toks, i + 3, "<");
            if is_ctor || turbofish_ctor {
                tracked.insert(toks[j - 2].text.clone());
            }
        }
    }
    tracked
}

/// D001 (+ D004 riding the same chains): iteration over unordered
/// collections, and floating-point accumulation over those iterators.
fn check_d001_d004(
    toks: &[Tok],
    excluded: &[bool],
    tracked: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        let direct_type = t.text == "HashMap" || t.text == "HashSet";
        if !direct_type && !tracked.contains(&t.text) {
            continue;
        }
        // Don't re-flag the declaration site itself.
        if is_punct(toks, i + 1, ":") && !is_punct(toks, i + 2, ":") {
            continue;
        }
        scan_chain(toks, i, &t.text, findings);
        check_for_loop(toks, i, &t.text, findings);
    }
}

/// Walks a method chain rooted at token `i` and reports order-observing
/// iteration (D001) and float accumulation after it (D004).
fn scan_chain(toks: &[Tok], root: usize, name: &str, findings: &mut Vec<Finding>) {
    let mut j = root + 1;
    // Skip a path/ctor prefix: `HashMap::new()`, `name` alone, etc.
    let mut saw_iter = false;
    loop {
        if is_punct(toks, j, ":") && is_punct(toks, j + 1, ":") {
            // `::segment` or `::<T>` turbofish
            j += 2;
            if is_punct(toks, j, "<") {
                j = match matching_angle(toks, j) {
                    Some(e) => e + 1,
                    None => return,
                };
            } else {
                j += 1;
            }
            continue;
        }
        if is_punct(toks, j, "(") {
            j = match matching(toks, j, "(", ")") {
                Some(e) => e + 1,
                None => return,
            };
            continue;
        }
        if !is_punct(toks, j, ".") {
            return;
        }
        // `.method`
        let m = j + 1;
        let Some(mt) = toks.get(m) else { return };
        if mt.kind != TokKind::Ident {
            return;
        }
        let method = mt.text.as_str();
        let mut k = m + 1;
        let mut turbofish_f64 = false;
        if is_punct(toks, k, ":") && is_punct(toks, k + 1, ":") && is_punct(toks, k + 2, "<") {
            let end = match matching_angle(toks, k + 2) {
                Some(e) => e,
                None => return,
            };
            turbofish_f64 = toks[k + 2..end].iter().any(|t| t.text == "f64");
            k = end + 1;
        }
        let args_end = if is_punct(toks, k, "(") {
            match matching(toks, k, "(", ")") {
                Some(e) => e,
                None => return,
            }
        } else {
            // Field access, not a call: stop the chain.
            return;
        };

        if !saw_iter && ITER_METHODS.contains(&method) {
            saw_iter = true;
            findings.push(Finding::new(
                RuleId::D001,
                mt.line,
                mt.col,
                format!(
                    "iteration order of `{name}` (HashMap/HashSet) is unordered; \
                     use BTreeMap/BTreeSet or sort before iterating"
                ),
            ));
        } else if saw_iter {
            let float_fold = method == "fold"
                && toks[k..=args_end]
                    .iter()
                    .any(|t| t.kind == TokKind::Punct && t.text == "+");
            if (method == "sum" && turbofish_f64) || float_fold {
                findings.push(Finding::new(
                    RuleId::D004,
                    mt.line,
                    mt.col,
                    format!(
                        "floating-point accumulation over unordered iteration of `{name}`; \
                         rounding makes the result order-dependent"
                    ),
                ));
            }
        }
        j = args_end + 1;
    }
}

/// `for x in name` / `for x in &name` — implicit IntoIterator over an
/// unordered collection. Chained forms (`for x in name.keys()`) are
/// reported by `scan_chain` instead.
fn check_for_loop(toks: &[Tok], i: usize, name: &str, findings: &mut Vec<Finding>) {
    // The next token must end the iterated expression (loop body brace)
    // for this to be direct iteration of the collection itself.
    if !is_punct(toks, i + 1, "{") {
        return;
    }
    // Walk back over the receiver path (`&`, `*`, `mut`, idents, `.`,
    // `::`) to find the `in` keyword.
    let mut j = i;
    while j >= 1 {
        let prev = &toks[j - 1];
        let passes = (prev.kind == TokKind::Punct
            && (prev.text == "&" || prev.text == "." || prev.text == "*" || prev.text == ":"))
            || (prev.kind == TokKind::Ident && prev.text != "in");
        if passes {
            j -= 1;
        } else {
            break;
        }
    }
    if j >= 1 && is_ident(toks, j - 1, "in") {
        findings.push(Finding::new(
            RuleId::D001,
            toks[i].line,
            toks[i].col,
            format!(
                "iteration order of `{name}` (HashMap/HashSet) is unordered; \
                 use BTreeMap/BTreeSet or sort before iterating"
            ),
        ));
    }
}

/// Matches `<` ... `>` with nesting (turbofish / generic args).
fn matching_angle(toks: &[Tok], start: usize) -> Option<usize> {
    if !is_punct(toks, start, "<") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                ";" | "{" => return None,
                _ => {}
            }
        }
    }
    None
}

/// D002: wall-clock and ambient-entropy APIs.
fn check_d002(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                let in_std_time_path = path_prefix(toks, i, "time");
                let in_use_std_time = in_use_of(toks, i, "time");
                let calls_now = is_punct(toks, i + 1, ":")
                    && is_punct(toks, i + 2, ":")
                    && is_ident(toks, i + 3, "now");
                if in_std_time_path || in_use_std_time || calls_now {
                    findings.push(Finding::new(
                        RuleId::D002,
                        t.line,
                        t.col,
                        format!(
                            "`std::time::{}` reads the wall clock; simulation time must come \
                             from the event loop (SimTime)",
                            t.text
                        ),
                    ));
                }
            }
            "thread_rng" => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`rand::thread_rng` draws OS entropy; all randomness must flow from a \
                     seeded DetRng"
                        .to_string(),
                ));
            }
            "random" if path_prefix(toks, i, "rand") => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`rand::random` draws OS entropy; all randomness must flow from a \
                     seeded DetRng"
                        .to_string(),
                ));
            }
            "var" | "var_os" if path_prefix(toks, i, "env") => {
                findings.push(Finding::new(
                    RuleId::D002,
                    t.line,
                    t.col,
                    "`std::env::var` makes behaviour depend on ambient environment state; \
                     seeds and configuration must be explicit parameters"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Is token `i` immediately preceded by `<segment>::`? (`::` lexes as two
/// single-char puncts, so the segment ident sits at `i - 3`.)
fn path_prefix(toks: &[Tok], i: usize, segment: &str) -> bool {
    i >= 3
        && is_punct(toks, i - 1, ":")
        && is_punct(toks, i - 2, ":")
        && is_ident(toks, i - 3, segment)
}

/// Is token `i` inside a `use std::<module>::{...}` item naming `module`?
fn in_use_of(toks: &[Tok], i: usize, module: &str) -> bool {
    // Walk back to the start of the statement and check its head.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct && (t.text == ";" || t.text == "}" || t.text == "{") {
            // `{` may open a use-group: `use std::time::{..., Instant}`.
            if t.text == "{" && j >= 3 && is_punct(toks, j - 2, ":") && is_punct(toks, j - 3, ":") {
                j -= 1;
                continue;
            }
            break;
        }
        j -= 1;
    }
    let head = &toks[j..i];
    let mut saw_use = false;
    let mut saw_module = false;
    for t in head {
        if t.kind == TokKind::Ident {
            if t.text == "use" {
                saw_use = true;
            }
            if t.text == module {
                saw_module = true;
            }
        }
    }
    saw_use && saw_module
}

/// D003: panicking combinators in non-test library code.
fn check_d003(toks: &[Tok], excluded: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if excluded[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1 && is_punct(toks, i - 1, ".") && is_punct(toks, i + 1, "(") =>
            {
                findings.push(Finding::new(
                    RuleId::D003,
                    t.line,
                    t.col,
                    format!(
                        "`.{}()` can panic in library code; surface the failure as \
                         Result/OpResult instead",
                        t.text
                    ),
                ));
            }
            "panic" if is_punct(toks, i + 1, "!") => {
                findings.push(Finding::new(
                    RuleId::D003,
                    t.line,
                    t.col,
                    "`panic!` aborts the simulation; surface the failure as \
                     Result/OpResult instead"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Parses `// simlint::allow(D00x[, D00y]): reason` directives. A
/// directive with no reason (or an empty one) is itself a violation
/// (S001) — every exception must be justified in-source.
fn parse_suppressions(comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Only a plain `//` comment whose first word is the directive
        // counts; doc comments (`///`, `//!`) merely *talk about* the
        // syntax and must not parse as directives.
        let Some(body) = c.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(after) = body.trim_start().strip_prefix("simlint::allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "malformed simlint::allow directive (missing `)`)".to_string(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad_rule = false;
        for part in after[..close].split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => bad_rule = true,
            }
        }
        if bad_rule || rules.is_empty() {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "simlint::allow names an unknown rule id".to_string(),
            ));
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding::new(
                RuleId::S001,
                c.line,
                c.col,
                "bare simlint::allow (no justification); write \
                 `// simlint::allow(D00x): <reason>`"
                    .to_string(),
            ));
            continue;
        }
        out.push(Suppression {
            rules,
            line: c.line,
        });
    }
    out
}

/// A suppression covers findings of its rule(s) on its own line or on
/// the next code line (directly below the directive, allowing stacked
/// directives).
fn resolve_suppressions(findings: &mut [Finding], suppressions: &[Suppression]) {
    for f in findings.iter_mut() {
        if f.rule == RuleId::S001 {
            continue;
        }
        let covered = suppressions.iter().any(|s| {
            s.rules.contains(&f.rule) && (s.line == f.line || covers_below(s, suppressions, f.line))
        });
        if covered {
            f.suppressed = true;
        }
    }
}

/// `s` sits on some line above `target`; it covers `target` when every
/// line strictly between them also holds a suppression directive
/// (stacked `// simlint::allow` lines above one statement).
fn covers_below(s: &Suppression, all: &[Suppression], target: u32) -> bool {
    if s.line >= target {
        return false;
    }
    ((s.line + 1)..target).all(|l| all.iter().any(|o| o.line == l))
}
