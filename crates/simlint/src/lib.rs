//! # ef-simlint — determinism & soundness auditor
//!
//! Static analysis for the EF-dedup workspace: every claim the
//! reproduction makes rests on runs being a pure function of
//! `(workload, topology, seed)`, and this linter is the mechanical
//! barrier that keeps that property from eroding.
//!
//! ## Rules
//!
//! | id | scope | checks |
//! |------|------------------------|--------|
//! | D001 | sim-critical crates | iteration over `HashMap`/`HashSet` (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`, …) |
//! | D002 | all crates but `bench` | wall-clock / ambient entropy (`std::time::{Instant, SystemTime}`, `rand::thread_rng`, `rand::random`, `std::env::var`) |
//! | D003 | sim-critical crates | `.unwrap()` / `.expect()` / `panic!` in non-test library code |
//! | D004 | sim-critical crates | float accumulation (`.sum::<f64>()`, `fold` with `+`) over unordered iterators |
//! | P001 | hot-path modules | slice/collection indexing `x[i]` with no covering `.len()`/`.get()` in the enclosing fn (fixed-size arrays, literal indices and ranges exempt) |
//! | P002 | hot-path modules | unchecked `+`/`*`/`<<` (and their `=` forms) between non-literal integer operands; write `wrapping_*`/`checked_*`/`saturating_*` |
//! | P003 | hot-path modules | `.unwrap()` / `.expect()` / `panic!` — D003 escalated for the panic-freedom set |
//! | E001 | sim-critical crates | `_ =>` wildcard arm in a `match` whose patterns name a fault/liveness enum; enumerate the variants |
//! | S001 | everywhere | `simlint::allow` directive without a justification |
//! | S002 | everywhere | stale `simlint::allow` — its covered lines produce no finding of the named rule(s) |
//! | S003 | everywhere | `simlint::allow` naming a rule id that does not exist |
//!
//! Sim-critical crates: `simcore`, `netsim`, `kvstore`, `core`,
//! `cloudstore`, `chunking`. Hot-path modules (the panic-freedom set):
//! `chunking::cdc`, `chunking::sha256`, `kvstore::cache`,
//! `kvstore::gray`. Fault/liveness enums policed by E001: `ChaosEvent`,
//! `FaultRule`, `FaultScope`, `Liveness`, `ClusterError`,
//! `DurableError`. Test code (`#[cfg(test)]` items, `tests/`,
//! `benches/`) is exempt from all rules.
//!
//! ## Suppressions
//!
//! ```text
//! // simlint::allow(D003): length checked two lines above
//! let first = items.first().unwrap();
//! ```
//!
//! A directive must carry a reason after the colon; a bare
//! `// simlint::allow(D003)` is itself reported (S001). A directive
//! trailing code covers that line; a directive on its own line covers
//! the next code line, looking through comment-only lines — so stacked
//! directives all resolve to the statement below the stack. An allow
//! that covers no finding is reported stale (S002). S-rules can be
//! neither allowed nor suppressed.
//!
//! ## Baseline ratchet
//!
//! `--baseline simlint-baseline.json` diffs per-rule unsuppressed
//! counts against the committed baseline: any increase fails, and a
//! decrease fails too until the baseline file is shrunk to match
//! (`--write-baseline`), so the debt can only burn down.

mod analyze;
mod baseline;
mod lexer;
mod parse;
mod scan;

pub use analyze::lint_source;
pub use baseline::Baseline;
pub use scan::{collect_workspace_files, context_for, display_path};

use std::fmt;
use std::path::Path;

/// Crates whose library code feeds event emission or RNG draw order.
pub const SIM_CRITICAL_CRATES: &[&str] = &[
    "simcore",
    "netsim",
    "kvstore",
    "core",
    "cloudstore",
    "chunking",
];

/// Modules on the dedup hot path, held to the P-series panic-freedom
/// rules: a panic here aborts the chunk pipeline mid-batch.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/chunking/src/cdc.rs",
    "crates/chunking/src/sha256.rs",
    "crates/kvstore/src/cache.rs",
    "crates/kvstore/src/gray.rs",
];

/// Fault/liveness enums whose `match`es must stay exhaustive (E001):
/// adding a variant must force every handler site to be revisited.
pub const FAULT_ENUMS: &[&str] = &[
    "ByzantineFault",
    "ChaosEvent",
    "FaultRule",
    "FaultScope",
    "Liveness",
    "ClusterError",
    "DurableError",
    "SpoolClass",
    "SpoolDest",
];

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iteration over `HashMap`/`HashSet` in sim-critical crates.
    D001,
    /// Wall-clock / ambient-entropy APIs outside `bench`.
    D002,
    /// `unwrap`/`expect`/`panic!` in sim-critical library code.
    D003,
    /// Floating-point accumulation over unordered iterators.
    D004,
    /// Unchecked indexing on a hot path.
    P001,
    /// Unchecked `+`/`*`/`<<` arithmetic on a hot path.
    P002,
    /// `unwrap`/`expect`/`panic!` on a hot path (escalated D003).
    P003,
    /// Wildcard `_` arm in a match over a fault/liveness enum.
    E001,
    /// Bare or malformed suppression directive.
    S001,
    /// Stale suppression directive (covers no finding).
    S002,
    /// Suppression directive naming a nonexistent rule.
    S003,
}

impl RuleId {
    /// Parses `"D001"` etc.; returns `None` for unknown ids.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "P001" => Some(RuleId::P001),
            "P002" => Some(RuleId::P002),
            "P003" => Some(RuleId::P003),
            "E001" => Some(RuleId::E001),
            "S001" => Some(RuleId::S001),
            "S002" => Some(RuleId::S002),
            "S003" => Some(RuleId::S003),
            _ => None,
        }
    }

    /// All rule ids, for `--help` and registry listings.
    pub const ALL: &'static [RuleId] = &[
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::P001,
        RuleId::P002,
        RuleId::P003,
        RuleId::E001,
        RuleId::S001,
        RuleId::S002,
        RuleId::S003,
    ];

    /// One-line description used by `--help`.
    pub fn summary(&self) -> &'static str {
        match self {
            RuleId::D001 => "iteration over HashMap/HashSet in sim-critical crates",
            RuleId::D002 => "wall-clock or ambient-entropy API outside bench",
            RuleId::D003 => "unwrap/expect/panic! in sim-critical library code",
            RuleId::D004 => "float accumulation over unordered iterators",
            RuleId::P001 => "unchecked indexing in a hot-path module",
            RuleId::P002 => "unchecked +/*/<< arithmetic in a hot-path module",
            RuleId::P003 => "unwrap/expect/panic! in a hot-path module",
            RuleId::E001 => "wildcard `_` arm in a match over a fault enum",
            RuleId::S001 => "suppression directive without justification",
            RuleId::S002 => "stale suppression directive (covers no finding)",
            RuleId::S003 => "suppression directive naming a nonexistent rule",
        }
    }

    /// S-series findings police the suppression mechanism itself, so
    /// they can be neither `--allow`ed nor silenced by a directive.
    pub fn is_suppression_hygiene(&self) -> bool {
        matches!(self, RuleId::S001 | RuleId::S002 | RuleId::S003)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::P001 => "P001",
            RuleId::P002 => "P002",
            RuleId::P003 => "P003",
            RuleId::E001 => "E001",
            RuleId::S001 => "S001",
            RuleId::S002 => "S002",
            RuleId::S003 => "S003",
        };
        f.write_str(s)
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCtx {
    /// D001/D003/D004/E001 apply (library code of a sim-critical crate).
    pub sim_critical: bool,
    /// D002 applies (any crate except `bench`).
    pub d002_applies: bool,
    /// P-series panic-freedom applies (hot-path module list).
    pub hot_path: bool,
}

/// One diagnostic, positioned `file:line:col` (path filled by callers
/// that lint from disk; [`lint_source`] leaves it empty).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path (empty for in-memory sources).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Covered by a justified `simlint::allow` directive.
    pub suppressed: bool,
}

impl Finding {
    pub(crate) fn new(rule: RuleId, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            file: String::new(),
            line,
            col,
            message,
            suppressed: false,
        }
    }

    /// rustc-style `file:line:col: RULE: message`.
    pub fn render(&self) -> String {
        let tag = if self.suppressed { " (allowed)" } else { "" };
        format!(
            "{}:{}:{}: {}: {}{}",
            self.file, self.line, self.col, self.rule, self.message, tag
        )
    }
}

/// Lints a file on disk, filling [`Finding::file`] with `display_path`.
pub fn lint_file(path: &Path, display_path: &str, ctx: &FileCtx) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let mut findings = lint_source(&src, ctx);
    for f in &mut findings {
        f.file = display_path.to_string();
    }
    Ok(findings)
}

/// Report of a whole run, consumed by the CLI and by tests.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings across all files, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run under the given allow-list. S-series
    /// rules can never be allowed: broken suppression hygiene is always
    /// an error.
    pub fn violations<'a>(&'a self, allowed: &[RuleId]) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| {
                !f.suppressed && (f.rule.is_suppression_hygiene() || !allowed.contains(&f.rule))
            })
            .collect()
    }

    /// Count of findings silenced by in-source directives.
    pub fn suppressed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }

    /// Per-rule count of unsuppressed findings, independent of any
    /// allow-list — the quantity the baseline ratchet tracks.
    pub fn counts(&self) -> std::collections::BTreeMap<RuleId, u64> {
        let mut out: std::collections::BTreeMap<RuleId, u64> =
            RuleId::ALL.iter().map(|r| (*r, 0)).collect();
        for f in self.findings.iter().filter(|f| !f.suppressed) {
            *out.entry(f.rule).or_insert(0) += 1;
        }
        out
    }

    /// Serializes the report as JSON (std-only writer).
    pub fn to_json(&self, allowed: &[RuleId]) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!(
            "\"violations\":{},",
            self.violations(allowed).len()
        ));
        out.push_str(&format!("\"suppressed\":{},", self.suppressed_count()));
        out.push_str("\"counts\":{");
        for (i, (rule, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{rule}\":{n}"));
        }
        out.push_str("},");
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
                 \"message\":\"{}\",\"suppressed\":{}}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message),
                f.suppressed
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
