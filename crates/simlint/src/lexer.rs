//! A small hand-rolled Rust lexer: enough token fidelity for simlint's
//! rules without a full parser (and without external dependencies).
//!
//! The lexer understands line/block comments (nested), string literals
//! (plain, raw, byte), char literals vs. lifetimes, and numeric literals
//! (including float/range disambiguation: `1.0` is one token, `0..n` is
//! digits followed by two `.` puncts). Comments are captured separately
//! because suppression directives live in them.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// String/char/numeric literal (contents preserved for numbers only).
    Lit,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Identifier text, the punctuation character, the digits of a
    /// numeric literal, or `""` for string/char literals.
    pub text: String,
    /// Token class.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// A comment (line or block) with its 1-based position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` marker.
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            if let Some(comment) = try_comment(&mut cur, line, col) {
                comments.push(comment);
                continue;
            }
            cur.bump();
            toks.push(punct('/', line, col));
            continue;
        }
        if c == '"' {
            consume_string(&mut cur);
            toks.push(lit(line, col));
            continue;
        }
        if c == '\'' {
            if consume_char_or_lifetime(&mut cur) {
                toks.push(lit(line, col));
            }
            // Lifetimes lex as a Punct `'` plus an Ident; the ident is
            // harmless for rule matching.
            continue;
        }
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_raw_or_byte_string(&mut cur, line, col) {
                toks.push(tok);
                continue;
            }
        }
        if c.is_ascii_digit() {
            let text = consume_number(&mut cur);
            toks.push(Tok {
                text,
                kind: TokKind::Lit,
                line,
                col,
            });
            continue;
        }
        if c == '_' || c.is_alphanumeric() {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            toks.push(Tok {
                text,
                kind: TokKind::Ident,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        toks.push(punct(c, line, col));
    }

    (toks, comments)
}

fn punct(c: char, line: u32, col: u32) -> Tok {
    Tok {
        text: c.to_string(),
        kind: TokKind::Punct,
        line,
        col,
    }
}

fn lit(line: u32, col: u32) -> Tok {
    Tok {
        text: String::new(),
        kind: TokKind::Lit,
        line,
        col,
    }
}

fn try_comment(cur: &mut Cursor, line: u32, col: u32) -> Option<Comment> {
    // Caller guarantees the current char is '/'.
    let mut probe = cur.chars.clone();
    probe.next();
    match probe.next() {
        Some('/') => {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Some(Comment { text, line, col })
        }
        Some('*') => {
            let mut text = String::new();
            let mut depth = 0u32;
            while let Some(c) = cur.peek() {
                if c == '/' {
                    let mut p = cur.chars.clone();
                    p.next();
                    if p.peek() == Some(&'*') {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                        continue;
                    }
                } else if c == '*' {
                    let mut p = cur.chars.clone();
                    p.next();
                    if p.peek() == Some(&'/') {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                }
                text.push(c);
                cur.bump();
            }
            Some(Comment { text, line, col })
        }
        _ => None,
    }
}

fn consume_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Returns `true` when a char literal was consumed; `false` for a
/// lifetime (whose `'` and ident are emitted by the caller's main loop).
fn consume_char_or_lifetime(cur: &mut Cursor) -> bool {
    let mut probe = cur.chars.clone();
    probe.next(); // the quote
    let first = probe.next();
    let second = probe.next();
    let is_lifetime =
        matches!(first, Some(c) if c == '_' || c.is_alphabetic()) && second != Some('\'');
    if is_lifetime {
        cur.bump(); // consume only the quote; ident lexes normally
        return false;
    }
    cur.bump(); // quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
    true
}

fn try_raw_or_byte_string(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    // Candidate prefixes: r" r#" b" br" br#" rb is not a thing.
    let mut probe = cur.chars.clone();
    let mut prefix_len = 0usize;
    let first = probe.next()?;
    prefix_len += 1;
    let mut raw = first == 'r';
    if first == 'b' {
        match probe.peek() {
            Some('r') => {
                probe.next();
                prefix_len += 1;
                raw = true;
            }
            Some('"') => {}
            _ => return None,
        }
    }
    let mut hashes = 0usize;
    if raw {
        while probe.peek() == Some(&'#') {
            probe.next();
            prefix_len += 1;
            hashes += 1;
        }
    }
    if probe.peek() != Some(&'"') {
        return None;
    }
    for _ in 0..prefix_len {
        cur.bump();
    }
    cur.bump(); // opening quote
    if !raw {
        // b"..." behaves like a normal string (escapes allowed).
        while let Some(c) = cur.bump() {
            match c {
                '\\' => {
                    cur.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        return Some(lit(line, col));
    }
    // Raw string: ends at `"` followed by `hashes` '#' chars.
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut p = cur.chars.clone();
            let mut matched = 0usize;
            while matched < hashes && p.next() == Some('#') {
                matched += 1;
            }
            if matched == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
    Some(lit(line, col))
}

fn consume_number(cur: &mut Cursor) -> String {
    // Digits (any radix chars, underscores), then a fractional part only
    // when `.` is followed by a digit (so `0..n` stays two range dots),
    // then an optional exponent with sign, then an alphanumeric suffix.
    // The consumed text is preserved so rules can recognize literal
    // operands (e.g. P001/P002 literal exemptions).
    let mut text = String::new();
    text.extend(cur.bump());
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            let at_exponent = c == 'e' || c == 'E';
            text.push(c);
            cur.bump();
            if at_exponent {
                if let Some(sign) = cur.peek() {
                    if sign == '+' || sign == '-' {
                        text.push(sign);
                        cur.bump();
                    }
                }
            }
        } else if c == '.' {
            let mut p = cur.chars.clone();
            p.next();
            if matches!(p.peek(), Some(d) if d.is_ascii_digit()) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r#"
            // HashMap in a comment
            /* Instant in /* nested */ block */
            let x = "thread_rng inside a string";
            let y = 'a';
        "#;
        let names = idents(src);
        assert!(names.contains(&"let".to_string()));
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"Instant".to_string()));
        assert!(!names.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn captures_comment_positions() {
        let (_, comments) = lex("let a = 1; // simlint::allow(D001): reason\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.contains("simlint::allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let names = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(names.contains(&"str".to_string()));
        // The lifetime ident is lexed (harmlessly) as an ident.
        assert!(names.contains(&"a".to_string()));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let names = idents(r##"let s = r#"HashMap "quoted" inside"#; let t = s;"##);
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(names.contains(&"t".to_string()));
    }

    #[test]
    fn range_dots_survive_after_numbers() {
        let (toks, _) = lex("for i in 0..n {}");
        let dots: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == ".")
            .collect();
        assert_eq!(dots.len(), 2);
    }

    #[test]
    fn float_literals_keep_their_dot() {
        let (toks, _) = lex("let x = 1.5e-3 + 2.0;");
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == ".")
            .count();
        assert_eq!(dots, 0);
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
