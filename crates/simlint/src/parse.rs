//! Item-level parse over the token stream: the structural layer the
//! P/E/S rule families need beyond bare lexemes.
//!
//! This is deliberately not a full AST (simlint stays dependency-free,
//! same rule as the SHA-256 implementation): it recovers exactly the
//! structure the rules consume —
//!
//! * item extents and the `#[cfg(test)]` mask (which tokens belong to
//!   test-gated items),
//! * `match` expressions with their arm patterns and bodies separated
//!   (so exhaustiveness rules can tell a `_` *pattern* from a `_` in an
//!   arm body),
//! * function extents (so bound-check coverage is scoped to the
//!   enclosing function),
//! * fixed-size-array bindings (`name: [T; N]`, `let name = [e; N]`),
//!   whose indexing cannot grow out from under a checked bound,
//! * the classification of source lines into code / comment-only /
//!   blank, which makes suppression-directive stacking explicit.

use crate::lexer::{Comment, Tok, TokKind};
use std::collections::BTreeSet;

pub(crate) fn is_punct(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

pub(crate) fn is_ident(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// A numeric literal (the lexer preserves digits; string/char literals
/// lex with empty text).
pub(crate) fn is_num_lit(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| {
        t.kind == TokKind::Lit && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
    })
}

/// Two consecutive tokens that are adjacent in the source (`+` `=`
/// forming `+=`, `<` `<` forming `<<`).
pub(crate) fn adjacent(toks: &[Tok], a: usize, b: usize) -> bool {
    match (toks.get(a), toks.get(b)) {
        (Some(x), Some(y)) => x.line == y.line && y.col == x.col + 1,
        _ => false,
    }
}

/// Index of the delimiter matching `open` at `start` (which must hold
/// `open`), or `None`.
pub(crate) fn matching(toks: &[Tok], start: usize, open: &str, close: &str) -> Option<usize> {
    if !is_punct(toks, start, open) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Matches `<` ... `>` with nesting (turbofish / generic args).
pub(crate) fn matching_angle(toks: &[Tok], start: usize) -> Option<usize> {
    if !is_punct(toks, start, "<") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                ";" | "{" => return None,
                _ => {}
            }
        }
    }
    None
}

/// Extent of the item starting at `start`: through the matching `}` of
/// its first block, or through a terminating `;`.
pub(crate) fn item_extent(toks: &[Tok], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth_paren += 1,
            ")" | "]" => depth_paren -= 1,
            "{" if depth_paren == 0 => {
                return matching(toks, j, "{", "}").unwrap_or(toks.len() - 1);
            }
            ";" if depth_paren == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Marks tokens that belong to `#[cfg(test)]`-gated items (or items
/// under `#[test]`), which every rule skips: test code is allowed to
/// panic and to use unordered collections for assertions.
pub(crate) fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(toks, i, "#") {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching(toks, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        if !attr_is_test_gate(&toks[i + 1..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then the gated item itself.
        let mut j = attr_end + 1;
        while is_punct(toks, j, "#") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let item_end = item_extent(toks, j);
        for m in mask.iter_mut().take(item_end + 1).skip(i) {
            *m = true;
        }
        i = item_end + 1;
    }
    mask
}

/// `#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[test]` — but not
/// `#[cfg(not(test))]`, which gates *non*-test code.
fn attr_is_test_gate(attr: &[Tok]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    let mut has_cfg_or_bare = false;
    for (k, t) in attr.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "test" => {
                has_test = true;
                // `#[test]` bare form: first token inside the brackets.
                if k == 1 {
                    has_cfg_or_bare = true;
                }
            }
            "cfg" => has_cfg_or_bare = true,
            "not" => has_not = true,
            _ => {}
        }
    }
    has_test && has_cfg_or_bare && !has_not
}

/// One arm of a `match`: pattern tokens `[pat.0, pat.1)` (guard
/// included), body tokens `[body.0, body.1)`.
pub(crate) struct MatchArm {
    pub pat: (usize, usize),
    #[allow(dead_code)]
    pub body: (usize, usize),
}

/// A `match` expression: the `match` keyword token and its arms.
pub(crate) struct MatchExpr {
    pub kw: usize,
    pub arms: Vec<MatchArm>,
}

/// Extracts every `match` expression (nested ones included — each is
/// reported independently). Patterns are split from bodies at the
/// top-level `=>`, so callers can reason about what an arm *matches*
/// separately from what it *does* — the distinction E001 needs.
pub(crate) fn match_expressions(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for kw in 0..toks.len() {
        if !(toks[kw].kind == TokKind::Ident && toks[kw].text == "match") {
            continue;
        }
        // Scrutinee: struct literals are not allowed there without
        // parens, so the first `{` at depth 0 opens the arm block.
        let mut depth = 0i32;
        let mut body_open = None;
        let mut j = kw + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                "{" if depth == 0 && toks[j].kind == TokKind::Punct => {
                    body_open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let Some(close) = matching(toks, open, "{", "}") else {
            continue;
        };
        out.push(MatchExpr {
            kw,
            arms: parse_arms(toks, open, close),
        });
    }
    out
}

fn parse_arms(toks: &[Tok], open: usize, close: usize) -> Vec<MatchArm> {
    let mut arms = Vec::new();
    let mut k = open + 1;
    while k < close {
        // Pattern (guard included): up to the top-level `=>`.
        let pat_start = k;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut m = k;
        while m < close {
            if toks[m].kind == TokKind::Punct {
                match toks[m].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && is_punct(toks, m + 1, ">") && adjacent(toks, m, m + 1) => {
                        arrow = Some(m);
                        break;
                    }
                    _ => {}
                }
            }
            m += 1;
        }
        let Some(arrow) = arrow else { break };
        // Body: a block arm ends at its `}`; an expression arm at the
        // next top-level `,` (or the match's closing brace).
        let body_start = arrow + 2;
        let body_end;
        if is_punct(toks, body_start, "{") {
            let e = matching(toks, body_start, "{", "}").unwrap_or(close);
            body_end = (e + 1).min(close);
            k = body_end;
            if is_punct(toks, k, ",") {
                k += 1;
            }
        } else {
            let mut depth = 0i32;
            let mut m = body_start;
            while m < close {
                if toks[m].kind == TokKind::Punct {
                    match toks[m].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                }
                m += 1;
            }
            body_end = m;
            k = if is_punct(toks, m, ",") { m + 1 } else { m };
        }
        arms.push(MatchArm {
            pat: (pat_start, arrow),
            body: (body_start, body_end),
        });
    }
    arms
}

/// Extents (inclusive token ranges) of every `fn` item, innermost-last
/// for nested functions.
pub(crate) fn fn_extents(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            out.push((i, item_extent(toks, i)));
        }
    }
    out
}

/// The innermost function extent containing token `i`, if any.
pub(crate) fn enclosing_fn(extents: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    extents
        .iter()
        .filter(|(s, e)| *s <= i && i <= *e)
        .min_by_key(|(s, e)| e - s)
        .copied()
}

/// Names bound to fixed-size arrays anywhere in the file: type
/// ascriptions `name: [T; N]` (fields, params, consts, lets — through
/// `&`, `&'a`, `mut`) and initializers `name = [expr; N]`. Indexing
/// such a binding is bounded by construction, so P001 exempts it.
pub(crate) fn fixed_array_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : [&|&'a|mut]* "[" ... ; ... "]"`
        if is_punct(toks, i + 1, ":") && !is_punct(toks, i + 2, ":") {
            let mut j = i + 2;
            loop {
                if is_punct(toks, j, "&") || is_ident(toks, j, "mut") {
                    j += 1;
                } else if is_punct(toks, j, "'") {
                    j += 2; // lifetime: quote + ident
                } else {
                    break;
                }
            }
            if is_punct(toks, j, "[") && bracket_has_toplevel_semi(toks, j) {
                out.insert(toks[i].text.clone());
                continue;
            }
        }
        // `name = [expr; N]` (also nested `[[e; N]; M]` — the outer
        // bracket still carries a top-level `;`).
        if is_punct(toks, i + 1, "=")
            && is_punct(toks, i + 2, "[")
            && bracket_has_toplevel_semi(toks, i + 2)
        {
            out.insert(toks[i].text.clone());
        }
    }
    out
}

fn bracket_has_toplevel_semi(toks: &[Tok], open: usize) -> bool {
    let Some(close) = matching(toks, open, "[", "]") else {
        return false;
    };
    let mut depth = 0i32;
    for t in &toks[open..=close] {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 1 => return true,
            _ => {}
        }
    }
    false
}

/// Lines that hold at least one token — "code lines" for directive
/// resolution. A suppression binds to its own line when code shares it,
/// otherwise to the next code line reachable through comment-only
/// lines (stacked directives are comment lines, so a stack resolves to
/// the statement below it, never to a sibling directive).
pub(crate) fn code_lines(toks: &[Tok]) -> BTreeSet<u32> {
    toks.iter().map(|t| t.line).collect()
}

/// Lines occupied by comments (block comments span all their lines).
pub(crate) fn comment_lines(comments: &[Comment]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    for c in comments {
        let span = c.text.matches('\n').count() as u32;
        for l in c.line..=c.line + span {
            out.insert(l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn match_arms_split_pattern_from_body() {
        let (toks, _) = lex("fn f(e: E) -> u32 { match e { E::A => 1, E::B { x } => x, _ => 0 } }");
        let ms = match_expressions(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
        let pat2: Vec<&str> = toks[ms[0].arms[2].pat.0..ms[0].arms[2].pat.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(pat2, vec!["_"]);
    }

    #[test]
    fn nested_matches_are_both_found() {
        let (toks, _) = lex("fn f() { match a { X::P => match b { Y::Q => 1, _ => 2 }, _ => 3 } }");
        let ms = match_expressions(&toks);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].arms.len(), 2);
        assert_eq!(ms[1].arms.len(), 2);
    }

    #[test]
    fn fixed_arrays_are_recognized() {
        let (toks, _) = lex("struct S { gear: [u64; 256] }\n\
             fn f(w: &mut [u32; 64], s: &[u8]) { let pad = [0u8; 128]; let v = vec![0u8; 9]; }");
        let names = fixed_array_names(&toks);
        assert!(names.contains("gear"));
        assert!(names.contains("w"));
        assert!(names.contains("pad"));
        assert!(!names.contains("s"), "slices are not fixed arrays");
        assert!(!names.contains("v"), "vec! is not a fixed array");
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let (toks, _) = lex("fn outer() { fn inner() { body(); } tail(); }");
        let fns = fn_extents(&toks);
        assert_eq!(fns.len(), 2);
        let body_ix = toks.iter().position(|t| t.text == "body").unwrap();
        let (s, _) = enclosing_fn(&fns, body_ix).unwrap();
        assert_eq!(toks[s + 1].text, "inner");
        let tail_ix = toks.iter().position(|t| t.text == "tail").unwrap();
        let (s, _) = enclosing_fn(&fns, tail_ix).unwrap();
        assert_eq!(toks[s + 1].text, "outer");
    }
}
