//! `ef-simlint` CLI: lints the workspace (or explicit paths) and exits
//! nonzero on violations. CI runs `cargo run -p ef-simlint -- --workspace
//! --deny-all` as a hard gate, plus `--json --baseline
//! simlint-baseline.json` as the ratchet: per-rule counts may never
//! rise, and the committed baseline may only shrink.

use ef_simlint::{
    collect_workspace_files, context_for, display_path, lint_file, Baseline, Report, RuleId,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
ef-simlint — determinism & soundness auditor for the EF-dedup workspace

USAGE:
    ef-simlint [OPTIONS] [PATHS...]

Lints the whole workspace when no paths are given.

OPTIONS:
    --workspace            lint every library source in the workspace
    --root <DIR>           workspace root (default: walk up from cwd)
    --allow <RULE>         downgrade a rule (repeatable); ignored by --deny-all
    --deny-all             every rule is an error (CI mode; ignores baseline)
    --baseline <FILE>      ratchet: fail if any per-rule count differs from
                           FILE (default: <root>/simlint-baseline.json when
                           present)
    --no-baseline          ignore any baseline file
    --write-baseline <FILE> write current per-rule counts to FILE and exit
    --json                 machine-readable report on stdout
    -h, --help             show this help and the rule registry

RULES:";

struct Opts {
    workspace: bool,
    root: Option<PathBuf>,
    allow: Vec<RuleId>,
    deny_all: bool,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
    json: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workspace: false,
        root: None,
        allow: Vec::new(),
        deny_all: false,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
        json: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--no-baseline" => opts.no_baseline = true,
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--baseline" => {
                let file = args.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => {
                let file = args.next().ok_or("--write-baseline needs a file")?;
                opts.write_baseline = Some(PathBuf::from(file));
            }
            "--allow" => {
                let id = args.next().ok_or("--allow needs a rule id")?;
                let rule = RuleId::parse(&id).ok_or_else(|| format!("unknown rule id `{id}`"))?;
                opts.allow.push(rule);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                for r in RuleId::ALL {
                    println!("    {r}  {}", r.summary());
                }
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    // Bare invocation (and bare `--json`) lints the whole workspace.
    if opts.paths.is_empty() {
        opts.workspace = true;
    }
    Ok(opts)
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The baseline in effect: an explicit `--baseline`, else the committed
/// `<root>/simlint-baseline.json` when present. `--deny-all` and
/// `--no-baseline` run without one (strict mode).
fn effective_baseline(opts: &Opts, root: &Path) -> Result<Option<Baseline>, String> {
    if opts.deny_all || opts.no_baseline {
        return Ok(None);
    }
    if let Some(path) = &opts.baseline {
        return Baseline::load(path).map(Some);
    }
    // Auto-load only for whole-workspace runs: partial scans would
    // read as falsely "stale" against workspace-wide counts.
    if opts.workspace {
        let committed = root.join("simlint-baseline.json");
        if committed.is_file() {
            return Baseline::load(&committed).map(Some);
        }
    }
    Ok(None)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or("no workspace root found above cwd")?
        }
    };

    let files: Vec<PathBuf> = if opts.workspace {
        collect_workspace_files(&root).map_err(|e| format!("scanning workspace: {e}"))?
    } else {
        opts.paths.clone()
    };

    let mut report = Report::default();
    for path in &files {
        let display = display_path(&root, path);
        let ctx = context_for(&display);
        let findings =
            lint_file(path, &display, &ctx).map_err(|e| format!("{}: {e}", path.display()))?;
        report.findings.extend(findings);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    let counts = report.counts();
    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_counts(&counts);
        std::fs::write(path, baseline.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("ef-simlint: wrote baseline to {}", path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let allowed: &[RuleId] = if opts.deny_all { &[] } else { &opts.allow };
    let violations = report.violations(allowed);
    let baseline = effective_baseline(&opts, &root)?;

    if opts.json {
        println!("{}", report.to_json(allowed));
    } else {
        for f in &report.findings {
            if !f.suppressed {
                println!("{}", f.render());
            }
        }
        println!(
            "simlint: scanned {} files: {} violation(s), {} suppressed",
            report.files_scanned,
            violations.len(),
            report.suppressed_count()
        );
    }

    // Ratchet mode: per-rule counts must match the baseline exactly —
    // a rise is a regression, a fall means the baseline must shrink.
    if let Some(baseline) = &baseline {
        let delta = baseline.delta(&counts);
        let mut regressed = 0u64;
        let mut stale = 0u64;
        if !opts.json {
            eprintln!("ratchet: rule  baseline  current  delta");
        }
        for row in &delta {
            if row.regressed() {
                regressed += row.current - row.baseline;
            }
            if row.stale() {
                stale += row.baseline - row.current;
            }
            if !opts.json && (row.baseline != 0 || row.current != 0) {
                eprintln!(
                    "ratchet: {}  {:>8}  {:>7}  {:>+5}",
                    row.rule,
                    row.baseline,
                    row.current,
                    row.current as i64 - row.baseline as i64
                );
            }
        }
        if regressed > 0 {
            eprintln!(
                "ef-simlint: ratchet failure: {regressed} finding(s) above the baseline; \
                 fix them — the baseline only shrinks"
            );
            return Ok(ExitCode::FAILURE);
        }
        if stale > 0 {
            eprintln!(
                "ef-simlint: baseline is stale by {stale} finding(s); shrink it with \
                 --write-baseline simlint-baseline.json"
            );
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }

    Ok(if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ef-simlint: {msg}");
            ExitCode::from(2)
        }
    }
}
