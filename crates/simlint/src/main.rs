//! `ef-simlint` CLI: lints the workspace (or explicit paths) and exits
//! nonzero on violations. CI runs `cargo run -p ef-simlint -- --workspace
//! --deny-all` as a hard gate.

use ef_simlint::{collect_workspace_files, context_for, display_path, lint_file, Report, RuleId};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
ef-simlint — determinism & soundness auditor for the EF-dedup workspace

USAGE:
    ef-simlint [OPTIONS] [PATHS...]

OPTIONS:
    --workspace        lint every library source in the workspace
    --root <DIR>       workspace root (default: walk up from cwd)
    --allow <RULE>     downgrade a rule (repeatable); ignored by --deny-all
    --deny-all         every rule is an error (CI mode)
    --json             machine-readable report on stdout
    -h, --help         show this help and the rule registry

RULES:";

struct Opts {
    workspace: bool,
    root: Option<PathBuf>,
    allow: Vec<RuleId>,
    deny_all: bool,
    json: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workspace: false,
        root: None,
        allow: Vec::new(),
        deny_all: false,
        json: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--allow" => {
                let id = args.next().ok_or("--allow needs a rule id")?;
                let rule = RuleId::parse(&id).ok_or_else(|| format!("unknown rule id `{id}`"))?;
                opts.allow.push(rule);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                for r in RuleId::ALL {
                    println!("    {r}  {}", r.summary());
                }
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths".to_string());
    }
    Ok(opts)
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or("no workspace root found above cwd")?
        }
    };

    let files: Vec<PathBuf> = if opts.workspace {
        collect_workspace_files(&root).map_err(|e| format!("scanning workspace: {e}"))?
    } else {
        opts.paths.clone()
    };

    let mut report = Report::default();
    for path in &files {
        let display = display_path(&root, path);
        let ctx = context_for(&display);
        let findings =
            lint_file(path, &display, &ctx).map_err(|e| format!("{}: {e}", path.display()))?;
        report.findings.extend(findings);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    let allowed: &[RuleId] = if opts.deny_all { &[] } else { &opts.allow };
    let violations = report.violations(allowed);

    if opts.json {
        println!("{}", report.to_json(allowed));
    } else {
        for f in &report.findings {
            if !f.suppressed {
                println!("{}", f.render());
            }
        }
        println!(
            "simlint: scanned {} files: {} violation(s), {} suppressed",
            report.files_scanned,
            violations.len(),
            report.suppressed_count()
        );
    }

    Ok(if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ef-simlint: {msg}");
            ExitCode::from(2)
        }
    }
}
