//! Scenario: the central cloud as a durable dedup archive.
//!
//! Edge rings suppress duplicates; the cloud stores the survivors. This
//! example runs the whole storage path: files are chunked and
//! deduplicated, manifests recorded, chunk payloads placed across six
//! cloud storage nodes — once with 3× replication and once with
//! Reed–Solomon RS(4,2) (the paper's future-work extension) — then two
//! storage nodes die and every file is restored byte-exact from the
//! degraded erasure-coded store.
//!
//! ```bash
//! cargo run --release --example cloud_archive
//! ```

use efdedup_repro::prelude::*;

fn main() {
    let dataset = datasets::accelerometer(5, 2026);
    let chunker = FixedChunker::new(dataset.model().chunk_size()).expect("valid chunk size");

    // --- Dedup + manifests -------------------------------------------------
    let mut catalog = FileCatalog::new();
    let mut files = Vec::new();
    for participant in 0..5usize {
        for day in 0..2u32 {
            let data = dataset.file(participant, day, 0, 250);
            let id = catalog.store_file(&chunker, &data);
            files.push((id, data));
        }
    }
    let stats = catalog.store().stats();
    println!(
        "archived {} files: {:.1} MB logical -> {:.1} MB physical (dedup {:.2}x)",
        catalog.file_count(),
        stats.logical_bytes as f64 / 1e6,
        stats.physical_bytes as f64 / 1e6,
        stats.dedup_ratio()
    );

    // --- Durability: replication vs erasure coding -------------------------
    let mut replicated =
        DurableStore::new(6, Durability::Replicated { copies: 3 }).expect("valid config");
    let mut coded =
        DurableStore::new(6, Durability::ErasureCoded { k: 4, m: 2 }).expect("valid config");
    for h in catalog.store().hashes() {
        let payload = catalog.store().get(h).expect("stored chunk");
        replicated.put(*h, payload.clone()).expect("put");
        coded.put(*h, payload).expect("put");
    }
    println!(
        "\ndurability at 2-failure tolerance over 6 storage nodes:\n  \
         3x replication: {:>7.1} MB physical\n  \
         RS(4,2)       : {:>7.1} MB physical ({:.0}% saved)",
        replicated.physical_bytes() as f64 / 1e6,
        coded.physical_bytes() as f64 / 1e6,
        (1.0 - coded.physical_bytes() as f64 / replicated.physical_bytes() as f64) * 100.0
    );

    // --- Failure + restore --------------------------------------------------
    coded.fail_node(1);
    coded.fail_node(4);
    println!("\nstorage nodes 1 and 4 failed; restoring all files from RS(4,2)…");
    let mut restored_ok = 0;
    for (id, original) in &files {
        let manifest = catalog.manifest(*id).expect("manifest exists");
        let mut bytes = Vec::with_capacity(original.len());
        for (hash, _) in &manifest.chunks {
            bytes.extend_from_slice(&coded.get(hash).expect("reconstructable"));
        }
        assert_eq!(&bytes, original, "restore mismatch for {id}");
        restored_ok += 1;
    }
    println!(
        "{restored_ok}/{} files restored byte-exact from the degraded store",
        files.len()
    );
}
