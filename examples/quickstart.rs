//! Quickstart: the complete EF-dedup pipeline on a small edge deployment.
//!
//! Eight edge nodes in four edge clouds ingest IoT accelerometer data.
//! We (1) estimate the similarity model from sampled files (Algorithm 1),
//! (2) build the SNOD2 instance from the fitted model plus measured
//! network costs, (3) partition the nodes into D2-rings with SMART
//! (Algorithm 2), and (4) run collaborative deduplication, comparing it
//! against the Cloud-Only and Cloud-Assisted baselines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use efdedup_repro::prelude::*;

fn main() {
    // --- Topology: 4 edge clouds x 2 nodes + a 4-VM central cloud -------
    let topo = TopologyBuilder::new()
        .edge_sites(4, 2)
        .cloud_site(4)
        .build();
    let network = Network::new(topo, NetworkConfig::paper_testbed());
    let edge = network.topology().edge_nodes();
    println!(
        "topology: {} edge nodes in {} edge clouds + {} cloud VMs",
        edge.len(),
        network.topology().edge_sites().len(),
        network.topology().cloud_nodes().len()
    );

    // --- Workload: synthetic accelerometer sources ----------------------
    let dataset = datasets::accelerometer(8, 42);

    // --- Step 1: Algorithm 1 — estimate the similarity model ------------
    // Sample one file from each of the first two sources and fit the
    // chunk-pool model against measured dedup ratios.
    let chunker = FixedChunker::new(dataset.model().chunk_size()).expect("valid chunk size");
    let samples: Vec<Vec<u8>> = (0..2).map(|s| dataset.file(s, 0, 0, 400)).collect();
    let truth = GroundTruth::measure(&chunker, &samples);
    let fitted = Estimator::new(EstimatorConfig::default()).fit(&truth);
    println!(
        "\nAlgorithm 1 fit: K={} pools, MSE={:.4}, mean error={:.2}%",
        fitted.pool_sizes.len(),
        fitted.mse,
        fitted.mean_rel_error * 100.0
    );

    // --- Step 2: the SNOD2 instance --------------------------------------
    // (For the partitioning we use the dataset's full ground-truth model;
    // the fitted model above demonstrates estimation quality on a pair.)
    let costs = network.cost_matrix(&edge);
    let inst =
        Snod2Instance::from_parts(dataset.model(), costs, 0.02, 2, 10.0).expect("valid instance");

    // --- Step 3: SMART partitioning ---------------------------------------
    let partition = SmartGreedy.partition(&inst, 3);
    println!("\nSMART D2-rings: {:?}", partition.rings());
    let cost = inst.total_cost(&partition);
    println!(
        "model cost: storage={:.0} chunks, network={:.0}, aggregate={:.0}",
        cost.storage, cost.network, cost.aggregate
    );

    // --- Step 4: run the system vs the cloud baselines --------------------
    let workload = Workload::from_dataset(&dataset, 8, 1_000, 0);
    let cfg = SystemConfig::paper_testbed();
    println!(
        "\n{:<16} {:>12} {:>12} {:>14} {:>12}",
        "strategy", "thr (MB/s)", "dedup", "WAN (MB)", "storage (MB)"
    );
    for strategy in [
        Strategy::Smart(partition.clone()),
        Strategy::CloudAssisted,
        Strategy::CloudOnly,
    ] {
        let m = run_system(&network, &workload, &strategy, &cfg);
        println!(
            "{:<16} {:>12.1} {:>12.2} {:>14.1} {:>12.1}",
            m.strategy,
            m.aggregate_throughput_mbps,
            m.dedup_ratio,
            m.wan_bytes as f64 / 1e6,
            m.storage_bytes as f64 / 1e6
        );
    }
    println!("\nEF-dedup (SMART) keeps hash lookups at the edge and ships only unique chunks.");
}
