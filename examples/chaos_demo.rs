//! Chaos layer demo: dedup under message loss, partitions and crashes.
//!
//! Generates a seeded fault schedule, rigs it onto the simulated edge
//! network, pushes a batch of check-and-insert ops through the D2-ring
//! index and reports how the cluster coped: retries, timeouts, degraded
//! "assume unique" resolutions and dropped messages. Re-running with the
//! same seed reproduces the run bit for bit.
//!
//! ```bash
//! cargo run --release --example chaos_demo            # default seed 7
//! cargo run --release --example chaos_demo -- 42      # pick a seed
//! ```

use std::collections::BTreeMap;

use bytes::Bytes;
use efdedup_repro::core::system::RobustnessMetrics;
use efdedup_repro::kvstore::{
    nth_op_id, ChaosScenario, ChaosScenarioConfig, ClientOp, ClusterConfig, OpResult, SimCluster,
};
use efdedup_repro::netsim::{Network, NetworkConfig, TopologyBuilder};
use efdedup_repro::simcore::{SimDuration, SimTime};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    // Three 2-node edge sites, paper-testbed latencies.
    let topo = TopologyBuilder::new()
        .edge_site(2)
        .edge_site(2)
        .edge_site(2)
        .build();
    let mut net = Network::new(topo, NetworkConfig::paper_testbed());

    let config = ChaosScenarioConfig::default();
    let scenario = ChaosScenario::generate(seed, net.topology(), &config);
    println!("== chaos schedule (seed {seed}) ==\n");
    for ev in scenario.events() {
        println!("  {ev:?}");
    }
    scenario.rig(&mut net);

    let members = net.topology().edge_nodes();
    let mut cluster = SimCluster::new(members.clone(), net, ClusterConfig::default());
    cluster.enable_heartbeats(SimDuration::from_millis(100), SimDuration::from_millis(350));
    scenario.apply(&mut cluster);

    // Each chunk hash is inserted twice from different coordinators: the
    // second sighting should dedup unless faults forced degraded mode.
    let keys = 16u32;
    let mut t = SimTime::ZERO;
    let mut key_of = BTreeMap::new();
    let mut seq = BTreeMap::new();
    for round in 0..2 {
        for k in 0..keys {
            let coordinator = members[((k + round) as usize) % members.len()];
            let n = seq.entry(coordinator).or_insert(0u64);
            key_of.insert(nth_op_id(coordinator, *n), k);
            *n += 1;
            let key = Bytes::from(format!("chunk-{k:04}"));
            cluster.submit(t, coordinator, ClientOp::CheckAndInsert(key.clone(), key));
            t += SimDuration::from_millis(211);
        }
    }
    let done = cluster.run();

    println!("\n== op outcomes ==\n");
    let (mut uniques, mut dups, mut degraded) = (0u32, 0u32, 0u32);
    for op in &done {
        let key = key_of[&op.op_id];
        if let OpResult::Dedup {
            unique,
            degraded: d,
        } = op.result
        {
            if unique {
                uniques += 1;
            } else {
                dups += 1;
            }
            if d {
                degraded += 1;
                println!(
                    "  chunk-{key:04}: degraded assume-unique at {:?} (quorum unreachable)",
                    op.finished
                );
            }
        }
    }
    println!(
        "\n  {} ops resolved: {uniques} unique, {dups} duplicate, {degraded} degraded",
        done.len()
    );
    assert!(
        uniques >= keys,
        "soundness: every chunk must be unique at least once"
    );

    let r = RobustnessMetrics::from_sim(&cluster);
    println!("\n== robustness counters ==\n");
    println!("  index retries      {}", r.index_retries);
    println!("  index timeouts     {}", r.index_timeouts);
    println!("  degraded lookups   {}", r.degraded_lookups);
    println!("  messages dropped   {}", r.messages_dropped);
}
