//! Scenario: wearable-sensor backup with drifting workloads (dataset 1).
//!
//! Five participants' accelerometer streams are backed up through edge
//! nodes. Their data statistics drift over the day, so we run
//! Algorithm 1 once cold and then warm-re-estimate every time slot —
//! exactly the paper's Fig. 3 workflow — and re-partition when the fitted
//! model changes enough to matter.
//!
//! ```bash
//! cargo run --release --example wearables_backup
//! ```

use efdedup_repro::prelude::*;

fn main() {
    let participants = 5;
    let dataset = datasets::accelerometer(participants, 99);
    let chunker = FixedChunker::new(dataset.model().chunk_size()).expect("valid chunk size");
    let estimator = Estimator::new(EstimatorConfig::default());

    let topo = TopologyBuilder::new()
        .edge_site(2)
        .edge_site(2)
        .edge_site(1)
        .cloud_site(2)
        .build();
    let network = Network::new(topo, NetworkConfig::paper_testbed());
    let edge = network.topology().edge_nodes();

    println!("tracking {participants} participants over 4 time slots\n");
    let mut previous = None;
    let mut last_partition: Option<Partition> = None;

    for slot in 0..4u32 {
        // Sample one file per participant for this slot and measure
        // ground-truth dedup ratios.
        let files: Vec<Vec<u8>> = (0..participants)
            .map(|p| dataset.file(p, slot, 0, 250))
            .collect();
        let truth = GroundTruth::measure(&chunker, &files);

        // Cold fit at slot 0, warm re-fit after (Fig. 3).
        let fitted = match &previous {
            None => estimator.fit(&truth),
            Some(prev) => estimator.fit_warm(&truth, prev),
        };
        println!(
            "slot {slot}: fit error {:.2}% ({} iterations, {})",
            fitted.mean_rel_error * 100.0,
            fitted.iterations,
            if previous.is_none() {
                "cold start"
            } else {
                "warm start"
            },
        );

        // Build this slot's instance from the *fitted* model and
        // measured network costs, then partition.
        let inst = fitted
            .to_instance(
                vec![512.0; participants],
                network.cost_matrix(&edge[..participants]),
                0.02,
                2,
                10.0,
            )
            .expect("fitted instance is valid");
        let partition = SmartGreedy.partition(&inst, 2);
        let changed = last_partition.as_ref() != Some(&partition);
        println!(
            "        rings {:?}{}",
            partition.rings(),
            if changed { "  <- repartitioned" } else { "" }
        );

        // Deduplicate this slot's data within the chosen rings.
        let workload = Workload::from_dataset(&dataset, participants, 500, slot);
        let metrics = run_system(
            &network,
            &workload,
            &Strategy::Smart(partition.clone()),
            &SystemConfig::paper_testbed(),
        );
        println!(
            "        dedup ratio {:.2}, WAN {:.1} MB, throughput {:.0} MB/s\n",
            metrics.dedup_ratio,
            metrics.wan_bytes as f64 / 1e6,
            metrics.aggregate_throughput_mbps
        );

        previous = Some(fitted);
        last_partition = Some(partition);
    }
}
