//! Tour of the distributed key-value store that backs every D2-ring.
//!
//! Shows the Cassandra-like machinery the paper relies on (Sec. IV):
//! consistent-hash placement, replication, consistency levels, node
//! failure with hinted handoff, seamless membership changes — first on
//! the instant in-process cluster, then on real OS threads.
//!
//! ```bash
//! cargo run --release --example kvstore_tour
//! ```

use bytes::Bytes;
use efdedup_repro::prelude::*;

fn main() {
    println!("== placement: consistent hashing with virtual nodes ==\n");
    let ring = ef_kvstore::HashRing::with_nodes((0..5).map(NodeId), 64);
    for key in [b"chunk-aa".as_slice(), b"chunk-bb", b"chunk-cc"] {
        println!(
            "{} -> replicas {:?}",
            String::from_utf8_lossy(key),
            ring.replicas(key, 2)
        );
    }
    println!("\nownership balance (fraction of token space):");
    for (node, frac) in ring.ownership() {
        println!("  {node}: {:.1}%", frac * 100.0);
    }

    println!("\n== failure + hinted handoff on the in-process cluster ==\n");
    let mut cluster = LocalCluster::new(
        (0..5).map(NodeId).collect(),
        ClusterConfig {
            replication_factor: 2,
            consistency: Consistency::One,
            ..ClusterConfig::default()
        },
    );
    for i in 0..100u32 {
        cluster
            .put(NodeId(i % 5), &i.to_be_bytes(), Bytes::from_static(b"h"))
            .expect("cluster up");
    }
    println!(
        "wrote 100 index entries (rf=2) -> {} replica rows",
        cluster.total_replica_entries()
    );

    cluster.set_down(NodeId(3));
    let mut readable = 0;
    for i in 0..100u32 {
        if cluster
            .get(NodeId(0), &i.to_be_bytes())
            .expect("up")
            .is_some()
        {
            readable += 1;
        }
    }
    println!("n3 down: {readable}/100 keys still readable via surviving replicas");

    for i in 100..150u32 {
        cluster
            .put(NodeId(0), &i.to_be_bytes(), Bytes::from_static(b"h"))
            .expect("cluster up");
    }
    let hints: usize = cluster
        .members()
        .iter()
        .filter_map(|&m| cluster.node(m))
        .map(|n| n.hint_count())
        .sum();
    println!("50 writes while down -> {hints} hints parked at coordinators");
    cluster.set_up(NodeId(3));
    println!(
        "n3 back up: hints replayed, n3 now holds {} entries",
        cluster
            .node(NodeId(3))
            .expect("member")
            .storage()
            .stats()
            .live_keys
    );

    println!("\n== seamless membership change ==");
    cluster.add_node(NodeId(5));
    println!(
        "added n5: rebalanced, n5 owns {} entries, every key still on exactly 2 replicas: {}",
        cluster
            .node(NodeId(5))
            .expect("member")
            .storage()
            .stats()
            .live_keys,
        cluster.total_replica_entries() == 2 * cluster.distinct_keys()
    );

    println!("\n== the same state machines on real threads ==\n");
    let threaded = ThreadedCluster::start((0..4).map(NodeId).collect(), ClusterConfig::default());
    let keysets: Vec<Vec<Vec<u8>>> = (0..4u32)
        .map(|t| {
            (0..50u32)
                .map(|i| format!("t{t}-{i}").into_bytes())
                .collect()
        })
        .collect();
    // Issue writes through all four coordinators.
    for (t, keys) in keysets.iter().enumerate() {
        for k in keys {
            threaded
                .put(NodeId(t as u32), k, Bytes::from_static(b"v"))
                .expect("threaded cluster up");
        }
    }
    let mut found = 0;
    for (t, keys) in keysets.iter().enumerate() {
        for k in keys {
            if threaded
                .get(NodeId(((t as u32) + 1) % 4), k)
                .expect("threaded cluster up")
                .is_some()
            {
                found += 1;
            }
        }
    }
    println!("threaded cluster: {found}/200 keys readable from a different coordinator");
    threaded.shutdown();
}
