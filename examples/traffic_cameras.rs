//! Scenario: a city's traffic-camera fleet (the paper's dataset 2).
//!
//! Twelve stationary cameras stream frames from six intersections, two
//! cameras each — but the two cameras of an intersection are backhauled
//! through *different* edge clouds (the paper's central tension:
//! correlated sources are not co-located). We sweep the inter-edge-cloud
//! latency and watch SMART shift from similarity-driven rings (cheap
//! inter-cloud links) to locality-driven rings (expensive links), and
//! then inject an edge-node failure to show the D2-ring index surviving
//! on its replicas.
//!
//! ```bash
//! cargo run --release --example traffic_cameras
//! ```

use bytes::Bytes;
use efdedup_repro::prelude::*;

fn main() {
    let cameras = 12;
    let dataset = datasets::traffic_video(cameras, 7);

    println!("== SMART ring structure vs inter-edge-cloud latency ==\n");
    for inter_ms in [1.0, 5.0, 40.0] {
        let topo = TopologyBuilder::new()
            .edge_sites(6, 2)
            .cloud_site(2)
            .build();
        let network = Network::new(
            topo,
            NetworkConfig::paper_testbed().with_inter_edge_latency_ms(inter_ms),
        );
        let edge = network.topology().edge_nodes();
        let inst =
            Snod2Instance::from_parts(dataset.model(), network.cost_matrix(&edge), 0.02, 2, 10.0)
                .expect("valid instance");
        // Three rings of ~4 cameras: ring size exceeds the replication
        // factor, so non-local lookups (and the latency trade-off) are in
        // play.
        let partition = SmartGreedy.partition(&inst, 3);
        let cost = inst.total_cost(&partition);
        // How many rings keep both cameras of some intersection together?
        let coherent = partition
            .rings()
            .iter()
            .filter(|ring| {
                ring.iter().any(|&a| {
                    ring.iter().any(|&b| a != b && a % 6 == b % 6) // same group
                })
            })
            .count();
        println!(
            "inter-cloud {inter_ms:>5.1} ms: {} rings, {} similarity-coherent, \
             storage {:.0}, network {:.0}",
            partition.ring_count(),
            coherent,
            cost.storage,
            cost.network
        );
    }

    println!("\n== Dedup run + failure injection on one D2-ring ==\n");
    // Build a 4-node ring index as the deployed system would and stream
    // both intersections' chunks through it.
    let members: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut ring = LocalCluster::new(
        members.clone(),
        ClusterConfig {
            replication_factor: 2,
            ..ClusterConfig::default()
        },
    );
    let chunker = FixedChunker::new(dataset.model().chunk_size()).expect("valid chunk size");
    let mut unique = 0usize;
    let mut total = 0usize;
    for (cam, &member) in members.iter().enumerate().take(4) {
        let frames = dataset.file(cam, 0, 0, 300);
        for chunk in chunker.chunk(&frames) {
            total += 1;
            if ring
                .check_and_insert(member, chunk.hash.as_bytes(), Bytes::from_static(&[1]))
                .expect("ring available")
            {
                unique += 1;
            }
        }
    }
    println!(
        "streamed {total} chunks, {unique} unique -> ring dedup ratio {:.2}",
        total as f64 / unique as f64
    );

    // Kill one edge node mid-operation: with replication factor 2 the
    // index stays available, and hinted handoff repairs the node later.
    ring.set_down(NodeId(2));
    let mut survived = 0usize;
    let probe = dataset.file(0, 0, 0, 300);
    for chunk in chunker.chunk(&probe) {
        if ring
            .get(NodeId(0), chunk.hash.as_bytes())
            .expect("ring available")
            .is_some()
        {
            survived += 1;
        }
    }
    println!("node n2 down: {survived}/300 previously seen chunks still found (no re-upload)");

    // New chunks written while n2 is down are hinted...
    let new_frames = dataset.file(1, 1, 0, 100);
    for chunk in chunker.chunk(&new_frames) {
        let _ = ring.check_and_insert(members[1], chunk.hash.as_bytes(), Bytes::from_static(&[1]));
    }
    let before = ring
        .node(NodeId(2))
        .expect("member")
        .storage()
        .stats()
        .live_keys;
    ring.set_up(NodeId(2));
    let after = ring
        .node(NodeId(2))
        .expect("member")
        .storage()
        .stats()
        .live_keys;
    println!(
        "n2 recovers: hinted handoff replayed {} index entries onto it",
        after - before
    );
}
