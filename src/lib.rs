//! # efdedup-repro — umbrella crate
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the EF-dedup
//! reproduction. The library itself only re-exports the workspace crates
//! under one roof so examples and tests can use a single dependency.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ef_chunking as chunking;
pub use ef_cloudstore as cloudstore;
pub use ef_datagen as datagen;
pub use ef_erasure as erasure;
pub use ef_kvstore as kvstore;
pub use ef_netsim as netsim;
pub use ef_simcore as simcore;
pub use efdedup as core;

/// Commonly used items for examples and integration tests.
pub mod prelude {
    pub use ef_chunking::{ChunkHash, Chunker, ChunkerKind, FixedChunker, GearChunker};
    pub use ef_cloudstore::{Durability, DurableStore, FileCatalog};
    pub use ef_datagen::datasets;
    pub use ef_datagen::{CharacteristicVector, GenerativeModel, SourceSpec};
    pub use ef_erasure::ReedSolomon;
    pub use ef_kvstore::{ClusterConfig, Consistency, LocalCluster, ThreadedCluster};
    pub use ef_netsim::{Network, NetworkConfig, NodeId, TopologyBuilder};
    pub use ef_simcore::{DetRng, SimDuration, SimTime};
    pub use efdedup::estimator::{Estimator, EstimatorConfig, GroundTruth};
    pub use efdedup::model::Snod2Instance;
    pub use efdedup::partition::{DedupOnly, NetworkOnly, Partition, Partitioner, SmartGreedy};
    pub use efdedup::system::{run_system, Strategy, SystemConfig, Workload};
}
